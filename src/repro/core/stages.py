"""Explicit pipeline stages: measure → fit → compose → adjust → search → verify.

:class:`~repro.core.pipeline.EstimationPipeline` used to be one 484-line
class where every step was a lazily-memoizing property with hand-wired
``perf.stage(...)`` blocks and ad-hoc "force my dependencies first so
their time is not billed to me" dances.  This module makes the steps
first-class:

* a :class:`Stage` names one step, declares what it ``requires`` and
  builds one typed **artifact** (a :class:`CampaignResult`, a
  :class:`FitArtifact`, a :class:`~repro.core.estimator.Estimator`, ...);
* the :class:`StageGraph` resolves dependencies, runs each stage at most
  once, and hooks two cross-cutting concerns *generically* instead of
  per-property:

  - **timing** — a timed stage's build is wrapped in
    ``perf.stage(name)`` *after* its dependencies are resolved, so a
    lazily-triggered campaign is charged to ``"campaign"``, never to the
    stage that happened to ask for it first;
  - **estimate invalidation** — stages that determine estimates
    (fit, compose, adjust) are flagged ``invalidates_estimates``;
    replacing or invalidating one drops every downstream artifact and
    fires the graph's invalidation hooks, which is how the
    :class:`~repro.perf.cache.EstimateCache` stays bound to the current
    model generation without the pipeline micro-managing it.

Stage names match :data:`repro.perf.report.PIPELINE_STAGES`
(``"campaign"``, ``"evaluation"``, ``"fit"``, ``"compose"``,
``"adjust"``; the ``"search"`` stage's artifact is the
:class:`SearchEngine`, whose optimize calls record the ``"search"``
timing), so existing perf reports read unchanged.

The stages hold no pipeline state: everything they need arrives through
the :class:`PipelineContext`, and artifact injection via
:meth:`StageGraph.set` is how :mod:`repro.core.persistence` restores a
saved pipeline without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.core.adjustment import LinearAdjustment
from repro.core.binning import ModelSelector
from repro.core.estimator import Estimator
from repro.core.memory_guard import MemoryGuard, split_dataset
from repro.core.model_store import ModelStore
from repro.core.search import (
    DEFAULT_BACKEND,
    ExhaustiveOptimizer,
    SearchBackend,
    SearchOutcome,
    SearchProblem,
    SearchSpace,
    create_search,
    estimator_bounds,
)
from repro.core.search import actual_best as _actual_best
from repro.core.grid_kernel import GridKernel
from repro.errors import SearchError
from repro.hpl.schedule import walker_stats
from repro.measure.campaign import CampaignResult, run_campaign, run_evaluation
from repro.measure.dataset import Dataset
from repro.perf.cache import EstimateCache, model_fingerprint
from repro.perf.report import GridKernelStats, PerfReport


# -- context ------------------------------------------------------------------


@dataclass
class PipelineContext:
    """Everything a stage may consult: the run's inputs plus callables the
    pipeline supplies (so stages never import or hold a pipeline).

    ``config`` is the :class:`~repro.core.pipeline.PipelineConfig` (typed
    loosely here to keep this module below the pipeline in the import
    graph)."""

    spec: ClusterSpec
    config: object
    plan: object
    perf: PerfReport
    #: ``(config, n, kind) -> worst-node memory ratio`` (pipeline-supplied).
    memory_ratio_fn: Callable[[ClusterConfig, int, str], float]
    #: Adjusted scalar estimate ``(config, n) -> seconds`` — the search
    #: engine's cache-fill path.
    scalar_estimate: Callable[[ClusterConfig, int], float]
    #: Vectorized adjusted estimates ``(config, [n...]) -> np.ndarray``.
    batch_estimate: Callable[[ClusterConfig, Sequence[int]], np.ndarray]
    #: Default candidate set for the optimizer.
    candidates: Callable[[], List[ClusterConfig]]
    #: The :class:`repro.workloads.Workload` family being measured; owns
    #: the simulator, phase decomposition and grid-kernel hook.  ``None``
    #: (unit-test graphs) behaves as the standard HPL setup.
    workload: object = None
    graph: "StageGraph" = field(init=False, repr=False, default=None)  # type: ignore[assignment]

    def artifact(self, name: str):
        """Resolve another stage's artifact (building it if needed)."""
        return self.graph.get(name)

    def runner(self):
        """The measurement runner: an explicit config override wins,
        otherwise the workload family's own simulator."""
        override = getattr(self.config, "runner", None)
        if override is not None:
            return override
        if self.workload is not None:
            return self.workload.runner()
        from repro.hpl.driver import run_hpl

        return run_hpl


# -- typed artifacts ----------------------------------------------------------


@dataclass(frozen=True)
class FitArtifact:
    """Output of the fit stage: the fitted store plus what the memory
    guard excluded from fitting (empty when the guard is off)."""

    store: ModelStore
    excluded_paging: Dataset


@dataclass(frozen=True)
class ComposeArtifact:
    """Output of the compose stage: the (mutated-in-place) store and which
    ``kind -> [Mi...]`` P-T models were composed rather than measured."""

    store: ModelStore
    composed: Dict[str, List[int]]


# -- stage protocol -----------------------------------------------------------


class Stage:
    """One named pipeline step producing one artifact.

    Subclasses set :attr:`name`, optionally flip
    :attr:`invalidates_estimates`, and implement :meth:`build`;
    :meth:`requires` and :meth:`timed` may depend on the context (the
    adjust stage, for example, only needs the evaluation dataset — and
    only deserves a timing entry — when adjustment is enabled)."""

    name: str = ""
    #: Replacing/invalidating this stage's artifact changes what the
    #: pipeline would estimate — downstream artifacts and estimate caches
    #: must go.
    invalidates_estimates: bool = False

    def requires(self, ctx: PipelineContext) -> Tuple[str, ...]:
        return ()

    def timed(self, ctx: PipelineContext) -> bool:
        return True

    def build(self, ctx: PipelineContext):
        raise NotImplementedError


class StageGraph:
    """Resolves stages on demand, each at most once, dependencies first.

    The graph is the one place that knows about timing and invalidation;
    stages only declare (``timed``, ``invalidates_estimates``) and the
    graph applies the policy uniformly."""

    def __init__(self, stages: Sequence[Stage], ctx: PipelineContext):
        self._stages: Dict[str, Stage] = {}
        for stage in stages:
            if not stage.name:
                raise ValueError(f"{type(stage).__name__} has no name")
            if stage.name in self._stages:
                raise ValueError(f"duplicate stage {stage.name!r}")
            self._stages[stage.name] = stage
        self.ctx = ctx
        ctx.graph = self
        self._artifacts: Dict[str, object] = {}
        self._building: List[str] = []
        self._invalidation_hooks: List[Callable[[str], None]] = []

    # -- resolution --------------------------------------------------------

    def stage(self, name: str) -> Stage:
        try:
            return self._stages[name]
        except KeyError:
            raise KeyError(
                f"unknown stage {name!r} (have: {', '.join(self._stages)})"
            ) from None

    def has(self, name: str) -> bool:
        return name in self._artifacts

    def get(self, name: str):
        """The stage's artifact, building it (and its requirements) first.

        Requirements are resolved *before* the stage's timing context
        opens, so lazily-triggered upstream work is billed to its own
        stage name."""
        if name in self._artifacts:
            return self._artifacts[name]
        stage = self.stage(name)
        if name in self._building:
            cycle = " -> ".join(self._building + [name])
            raise RuntimeError(f"stage dependency cycle: {cycle}")
        self._building.append(name)
        try:
            for dep in stage.requires(self.ctx):
                self.get(dep)
            if stage.timed(self.ctx):
                with self.ctx.perf.stage(stage.name):
                    artifact = stage.build(self.ctx)
            else:
                artifact = stage.build(self.ctx)
        finally:
            self._building.pop()
        self._artifacts[name] = artifact
        return artifact

    # -- injection & invalidation -----------------------------------------

    def set(self, name: str, artifact) -> None:
        """Inject an artifact (e.g. loaded from disk) instead of building.

        Anything downstream of ``name`` is dropped so it rebuilds against
        the injected artifact; inject in dependency order."""
        self.stage(name)  # validate the name
        self._artifacts[name] = artifact
        self._drop_dependents(name)
        self._fire_if_estimating({name})

    def invalidate(self, name: str) -> None:
        """Forget a stage's artifact (and everything downstream of it)."""
        dropped = {name} if self._artifacts.pop(name, None) is not None else set()
        dropped |= self._drop_dependents(name)
        self._fire_if_estimating(dropped)

    def on_invalidate(self, hook: Callable[[str], None]) -> None:
        """Run ``hook(stage_name)`` whenever an estimate-determining
        stage's artifact is replaced or dropped — the generic attachment
        point for estimate-cache invalidation."""
        self._invalidation_hooks.append(hook)

    def _dependents(self, name: str) -> List[str]:
        return [
            other.name
            for other in self._stages.values()
            if name in other.requires(self.ctx)
        ]

    def _drop_dependents(self, name: str) -> set:
        dropped = set()
        for dep_name in self._dependents(name):
            if self._artifacts.pop(dep_name, None) is not None:
                dropped.add(dep_name)
            dropped |= self._drop_dependents(dep_name)
        return dropped

    def _fire_if_estimating(self, names: set) -> None:
        for name in sorted(names):
            if self.stage(name).invalidates_estimates:
                for hook in self._invalidation_hooks:
                    hook(name)


# -- concrete stages ----------------------------------------------------------


class MeasureStage(Stage):
    """Run the construction campaign (the paper's measurement step)."""

    name = "campaign"

    def build(self, ctx: PipelineContext) -> CampaignResult:
        before = walker_stats().snapshot()
        result = run_campaign(
            ctx.spec,
            ctx.plan,
            params=ctx.config.hpl_params,
            noise=ctx.config.noise,
            seed=ctx.config.seed,
            runner=ctx.runner(),
            workers=ctx.config.workers,
        )
        # main-process counters only: pool workers keep their own
        ctx.perf.record_walker(walker_stats().delta(before))
        return result


class EvaluationStage(Stage):
    """Measure the ground truth of the evaluation grid."""

    name = "evaluation"

    def build(self, ctx: PipelineContext) -> Dataset:
        before = walker_stats().snapshot()
        dataset = run_evaluation(
            ctx.spec,
            ctx.plan,
            params=ctx.config.hpl_params,
            noise=ctx.config.noise,
            seed=ctx.config.seed,
            runner=ctx.runner(),
            workers=ctx.config.workers,
        )
        ctx.perf.record_walker(walker_stats().delta(before))
        return dataset


class FitStage(Stage):
    """Fit every N-T and P-T model the construction dataset supports
    (after the optional memory-guard split)."""

    name = "fit"
    invalidates_estimates = True

    def requires(self, ctx: PipelineContext) -> Tuple[str, ...]:
        return ("campaign",)

    def build(self, ctx: PipelineContext) -> FitArtifact:
        dataset = ctx.artifact("campaign").dataset
        excluded = Dataset()
        if ctx.config.memory_guard:
            guard = MemoryGuard(
                ctx.spec,
                threshold=ctx.config.guard_threshold,
                footprint=ctx.config.guard_footprint,
            )
            dataset, excluded = split_dataset(dataset, guard)
        store = ModelStore.fit_dataset(dataset, weighting=ctx.config.nt_weighting)
        return FitArtifact(store=store, excluded_paging=excluded)


class ComposeStage(Stage):
    """Compose P-T models for kinds without enough measured PEs, using the
    kind with the most measured P-T models as the source (Section 3.5)."""

    name = "compose"
    invalidates_estimates = True

    def requires(self, ctx: PipelineContext) -> Tuple[str, ...]:
        return ("fit",)

    def build(self, ctx: PipelineContext) -> ComposeArtifact:
        store = ctx.artifact("fit").store
        composed: Dict[str, List[int]] = {}
        measured_counts = {
            kind: sum(
                1
                for (k, _), model in store.pt.items()
                if k == kind and not model.is_composed
            )
            for kind in store.kinds()
        }
        if measured_counts:
            source = max(measured_counts, key=lambda k: (measured_counts[k], k))
            if measured_counts[source] > 0:
                for kind in store.kinds():
                    if kind == source:
                        continue
                    new_mis = ctx.config.composition.compose_missing(
                        store, kind, source
                    )
                    if new_mis:
                        composed[kind] = new_mis
        return ComposeArtifact(store=store, composed=composed)


class EstimatorStage(Stage):
    """Build the :class:`~repro.core.estimator.Estimator` facade over the
    fitted-and-composed store (untimed: it only wires objects)."""

    name = "estimator"

    def requires(self, ctx: PipelineContext) -> Tuple[str, ...]:
        return ("compose",)

    def timed(self, ctx: PipelineContext) -> bool:
        return False

    def build(self, ctx: PipelineContext) -> Estimator:
        selector = ModelSelector(
            ctx.artifact("compose").store, memory_bins=ctx.config.memory_bins
        )
        selector.memory_ratio_fn = ctx.memory_ratio_fn
        return selector


class AdjustStage(Stage):
    """Calibrate the linear adjustment on the calibration family (paper
    Section 4.1.2) — or return the identity when adjustment is off."""

    name = "adjust"
    invalidates_estimates = True

    def requires(self, ctx: PipelineContext) -> Tuple[str, ...]:
        # The calibration fit needs models and ground truth; when
        # adjustment is off nothing is needed (and nothing is timed).
        return ("estimator", "evaluation") if ctx.config.adjust else ()

    def timed(self, ctx: PipelineContext) -> bool:
        return bool(ctx.config.adjust)

    def build(self, ctx: PipelineContext) -> LinearAdjustment:
        if not ctx.config.adjust:
            return LinearAdjustment(mi_threshold=ctx.config.adjustment_threshold)
        facade: Estimator = ctx.artifact("estimator")
        evaluation: Dataset = ctx.artifact("evaluation")
        n_cal = calibration_size(ctx.plan, ctx.config)
        triples = []
        for config in calibration_configs(ctx.spec, ctx.plan, ctx.config):
            per_kind = facade.estimate_kinds(config, n_cal)
            raw_total = max(estimate.total for estimate in per_kind)
            max_mi = max(a.procs_per_pe for a in config.active)
            record = evaluation.lookup(
                config.as_flat_tuple(ctx.plan.kinds), n_cal
            )
            triples.append((max_mi, raw_total, record.wall_time_s))
        return LinearAdjustment.fit(
            triples, mi_threshold=ctx.config.adjustment_threshold
        )


class SearchStage(Stage):
    """Build the :class:`SearchEngine` (untimed: the engine itself charges
    its optimize calls to the ``"search"`` timing)."""

    name = "search"

    def requires(self, ctx: PipelineContext) -> Tuple[str, ...]:
        return ("estimator", "adjust")

    def timed(self, ctx: PipelineContext) -> bool:
        return False

    def build(self, ctx: PipelineContext) -> "SearchEngine":
        spec = ctx.spec
        return SearchEngine(
            facade=ctx.artifact("estimator"),
            adjustment=ctx.artifact("adjust"),
            guard_footprint=ctx.config.guard_footprint,
            scalar_estimate=ctx.scalar_estimate,
            batch_estimate=ctx.batch_estimate,
            candidates=ctx.candidates,
            validate=lambda config: config.validate_against(spec),
            perf=ctx.perf,
            default_backend=getattr(ctx.config, "search_backend", DEFAULT_BACKEND),
            seed=getattr(ctx.config, "seed", 0),
            cost_model=(
                getattr(ctx.config, "cost", None)
                if getattr(ctx.config, "cost", None) is not None
                else getattr(ctx.spec, "cost", None)
            ),
            grid_kernel_factory=(
                ctx.workload.make_grid_kernel if ctx.workload is not None else None
            ),
        )


class VerifyStage(Stage):
    """Expose the ground-truth comparisons (untimed; the evaluation
    measurements themselves are charged to ``"evaluation"``)."""

    name = "verify"

    def requires(self, ctx: PipelineContext) -> Tuple[str, ...]:
        return ("evaluation",)

    def timed(self, ctx: PipelineContext) -> bool:
        return False

    def build(self, ctx: PipelineContext) -> "Verifier":
        return Verifier(evaluation=ctx.artifact("evaluation"), plan=ctx.plan)


def default_stages() -> Tuple[Stage, ...]:
    """The standard protocol pipeline, in dependency order."""
    return (
        MeasureStage(),
        EvaluationStage(),
        FitStage(),
        ComposeStage(),
        EstimatorStage(),
        AdjustStage(),
        SearchStage(),
        VerifyStage(),
    )


# -- calibration helpers ------------------------------------------------------


def calibration_size(plan, config) -> int:
    """The paper calibrates at N = 6400; clamp into the eval grid."""
    if config.calibration_n is not None:
        return config.calibration_n
    sizes = plan.evaluation_sizes
    return 6400 if 6400 in sizes else max(sizes)


def calibration_configs(spec: ClusterSpec, plan, config) -> List[ClusterConfig]:
    """The calibration family: evaluation configurations that use every
    kind at full PE count and reach the adjustment threshold (the
    paper's ``M1 >= 3`` at ``P2 = 8``)."""
    available = spec.pe_counts()
    threshold = config.adjustment_threshold
    out = []
    for candidate in plan.evaluation_configs:
        if any(a.pe_count != available[a.kind_name] for a in candidate.active):
            continue
        if len(candidate.active) != len(available):
            continue
        if max(a.procs_per_pe for a in candidate.active) < threshold:
            continue
        out.append(candidate)
    return out


# -- search engine ------------------------------------------------------------


class SearchEngine:
    """The search stage's artifact: estimate cache + objectives + optimizer.

    Owns the one :class:`~repro.perf.cache.EstimateCache` of a model
    generation — its fingerprint is built from the estimator facade's
    :meth:`~repro.core.estimator.Estimator.fingerprint` (which already
    covers every model and the memory bins) plus the adjustment and the
    guard footprint, so any change that could alter an estimate yields a
    fresh fingerprint.  The engine is itself dropped by the stage graph
    whenever an estimate-determining stage changes, which is the generic
    invalidation path.
    """

    def __init__(
        self,
        facade: Estimator,
        adjustment: LinearAdjustment,
        guard_footprint: float,
        scalar_estimate: Callable[[ClusterConfig, int], float],
        batch_estimate: Callable[[ClusterConfig, Sequence[int]], np.ndarray],
        candidates: Callable[[], List[ClusterConfig]],
        perf: PerfReport,
        validate: Optional[Callable[[ClusterConfig], None]] = None,
        default_backend: str = DEFAULT_BACKEND,
        seed: int = 0,
        cost_model: Optional[object] = None,
        grid_kernel_factory: Optional[Callable] = None,
    ):
        self.facade = facade
        self.adjustment = adjustment
        self.guard_footprint = guard_footprint
        self._scalar = scalar_estimate
        self._batch = batch_estimate
        self._candidates = candidates
        self.perf = perf
        self._validate = validate
        self.default_backend = default_backend
        self.seed = seed
        #: Duck-typed :class:`repro.cost.model.CostModel` (None = unpriced).
        self.cost_model = cost_model
        #: Per-workload kernel constructor
        #: (:meth:`repro.workloads.Workload.make_grid_kernel`); ``None``
        #: builds the standard :class:`GridKernel` directly.
        self._grid_kernel_factory = grid_kernel_factory
        self._cache: Optional[EstimateCache] = None
        self._grid_kernel: Optional[GridKernel] = None

    @property
    def estimate_cache(self) -> EstimateCache:
        """Memoized ``(config, N) -> adjusted total`` store, bound to the
        current models by fingerprint (see DESIGN.md for the invalidation
        rule)."""
        if self._cache is None:
            fingerprint = model_fingerprint(
                self.facade.fingerprint(),
                self.adjustment.to_dict(),
                self.guard_footprint,
            )
            self._cache = EstimateCache(fingerprint)
            self.perf.cache = self._cache
        return self._cache

    def estimator(self, cached: bool = False):
        """The objective function for optimizers: (config, n) -> seconds.

        ``cached=True`` routes lookups through :attr:`estimate_cache`
        (identical values; repeated queries become dict hits).
        """
        if not cached:

            def objective(config: ClusterConfig, n: int) -> float:
                return self._scalar(config, n)

            return objective

        def cached_objective(config: ClusterConfig, n: int) -> float:
            cache = self.estimate_cache
            key = cache.key_of(config)
            hit = cache.get(key, n)
            if hit is not None:
                return hit
            value = self._scalar(config, n)
            cache.put(key, n, value)
            return value

        return cached_objective

    def batch_estimator(self):
        """Vectorized + cached objective for ``optimize_many``:
        ``(config, [n...]) -> array of seconds``.

        Cache hits are served from :attr:`estimate_cache`; only the
        missing sizes go through one vectorized model evaluation, whose
        results then populate the cache.
        """

        def batch_objective(config: ClusterConfig, ns: Sequence[int]) -> np.ndarray:
            cache = self.estimate_cache
            sizes = [int(n) for n in ns]
            out = np.empty(len(sizes), dtype=float)
            key = cache.key_of(config)
            missing: List[int] = []
            for i, n in enumerate(sizes):
                hit = cache.get(key, n)
                if hit is None:
                    missing.append(i)
                else:
                    out[i] = hit
            if missing:
                values = self._batch(config, [sizes[i] for i in missing])
                for j, i in enumerate(missing):
                    out[i] = values[j]
                    cache.put(key, sizes[i], float(values[j]))
            return out

        return batch_objective

    @property
    def grid_kernel(self) -> GridKernel:
        """The candidate-axis vectorized kernel of this model generation.

        Built once per engine — and the engine is dropped by the stage
        graph whenever an estimate-determining stage changes, so the
        kernel's packed coefficient tensors live exactly as long as the
        pipeline fingerprint they were routed from.  Its
        :class:`~repro.perf.report.GridKernelStats` are published on the
        perf report (rendered by ``--profile``).
        """
        if self._grid_kernel is None:
            stats = GridKernelStats()
            if self._grid_kernel_factory is not None:
                self._grid_kernel = self._grid_kernel_factory(
                    self.facade,
                    self.adjustment,
                    self._validate,
                    stats,
                    self._batch,
                )
            else:
                self._grid_kernel = GridKernel(
                    self.facade,
                    self.adjustment,
                    validate=self._validate,
                    stats=stats,
                    batch_fallback=self._batch,
                )
            self.perf.grid = stats
        return self._grid_kernel

    def estimate_grid(
        self, configs: Sequence[ClusterConfig], ns: Sequence[int]
    ) -> np.ndarray:
        """Adjusted estimates of every ``(config, n)`` cell as a
        ``(C, S)`` array, bitwise the scalar estimates.

        Cache-integrated like :meth:`batch_estimator`: every cell is
        looked up first, the rows with at least one miss go through a
        single kernel block, and only the missing cells are written back
        (hit cells keep their cached values, so a warm sweep is pure
        dictionary lookups).
        """
        cache = self.estimate_cache
        sizes = [int(n) for n in ns]
        count, width = len(configs), len(sizes)
        out = np.empty((count, width), dtype=float)
        hit_mask = np.zeros((count, width), dtype=bool)
        miss_rows: List[int] = []
        for i, config in enumerate(configs):
            key = cache.key_of(config)
            row_full = True
            for j, n in enumerate(sizes):
                hit = cache.get(key, n)
                if hit is None:
                    row_full = False
                else:
                    out[i, j] = hit
                    hit_mask[i, j] = True
            if not row_full:
                miss_rows.append(i)
        if miss_rows:
            block_configs = [configs[i] for i in miss_rows]
            block = self.grid_kernel.evaluate(block_configs, sizes)
            for r, i in enumerate(miss_rows):
                key = cache.key_of(configs[i])
                for j, n in enumerate(sizes):
                    if not hit_mask[i, j]:
                        out[i, j] = block[r, j]
                        cache.put(key, n, float(block[r, j]))
        return out

    def grid_estimator(self):
        """The candidate-axis objective for search backends:
        ``(configs, [n...]) -> (C, S) array`` (see :meth:`estimate_grid`)."""

        def grid_objective(
            configs: Sequence[ClusterConfig], ns: Sequence[int]
        ) -> np.ndarray:
            return self.estimate_grid(configs, ns)

        return grid_objective

    def optimizer(
        self,
        candidates: Optional[Sequence[ClusterConfig]] = None,
        backend: Optional[str] = None,
        budget: Optional[int] = None,
        **options,
    ) -> SearchBackend:
        """A ready-to-run search backend over the candidate grid.

        ``backend=None`` uses the engine's default (the pipeline config's
        ``search_backend``); the plain exhaustive default keeps its
        vectorized grid fast path.  Any other tag goes through the search
        registry with a :class:`SearchProblem` carrying the model-derived
        bound oracle (so ``branch-bound`` can prune), the rate card (so
        ``budget-frontier`` can price), and the pipeline seed (so
        stochastic backends are reproducible).  Extra ``options`` go to
        the backend's ``from_problem`` (e.g. ``max_cost=``/``alpha=`` for
        ``budget-frontier``); a backend that rejects one raises
        :class:`~repro.errors.SearchError`.
        """
        tag = backend if backend is not None else self.default_backend
        pool = (
            list(candidates) if candidates is not None else self._candidates()
        )
        if tag == "exhaustive" and budget is None and not options:
            return ExhaustiveOptimizer(
                self.estimator(),
                pool,
                batch_estimator=self.batch_estimator(),
                grid_estimator=self.grid_estimator(),
            )
        space = SearchSpace.from_candidates(pool)
        problem = SearchProblem(
            estimator=self.estimator(),
            candidates=pool,
            space=space,
            kinds=list(space.kinds),
            batch_estimator=self.batch_estimator(),
            grid_estimator=self.grid_estimator(),
            bounds=estimator_bounds(
                self.facade, self.adjustment, p_max=space.max_total_processes
            ),
            cost=self.cost_model,
            seed=self.seed,
        )
        return create_search(tag, problem, budget=budget, **options)

    @staticmethod
    def _cost_options(
        backend: Optional[str],
        max_cost: Optional[float],
        alpha: Optional[float],
    ) -> tuple:
        """Resolve (tag, options) for a possibly cost-constrained call.

        A ``max_cost`` or ``alpha`` needs the multi-objective backend;
        combining either with an explicitly different backend is a typed
        error rather than a silently ignored constraint.
        """
        if max_cost is None and alpha is None:
            return backend, {}
        if backend is not None and backend != "budget-frontier":
            raise SearchError(
                f"max_cost/alpha need the 'budget-frontier' backend, "
                f"not {backend!r}"
            )
        options = {}
        if max_cost is not None:
            options["max_cost"] = max_cost
        if alpha is not None:
            options["alpha"] = alpha
        return "budget-frontier", options

    def _record(self, outcome: SearchOutcome) -> SearchOutcome:
        self.perf.record_search(outcome.stats)
        return outcome

    def optimize(
        self,
        n: int,
        backend: Optional[str] = None,
        budget: Optional[int] = None,
        max_cost: Optional[float] = None,
        alpha: Optional[float] = None,
    ) -> SearchOutcome:
        tag, options = self._cost_options(backend, max_cost, alpha)
        with self.perf.stage("search"):
            return self._record(
                self.optimizer(backend=tag, budget=budget, **options).optimize(n)
            )

    def optimize_many(
        self,
        ns: Sequence[int],
        backend: Optional[str] = None,
        budget: Optional[int] = None,
        max_cost: Optional[float] = None,
        alpha: Optional[float] = None,
    ) -> List[SearchOutcome]:
        tag, options = self._cost_options(backend, max_cost, alpha)
        with self.perf.stage("search"):
            outcomes = self.optimizer(
                backend=tag, budget=budget, **options
            ).optimize_many(ns)
            return [self._record(outcome) for outcome in outcomes]

    # -- Pareto frontiers ----------------------------------------------------

    def _frontier_backend(
        self, budget: Optional[int], max_cost: Optional[float]
    ):
        options = {} if max_cost is None else {"max_cost": max_cost}
        return self.optimizer(
            backend="budget-frontier", budget=budget, **options
        )

    def pareto(
        self,
        n: int,
        budget: Optional[int] = None,
        max_cost: Optional[float] = None,
    ):
        """The exact (time, dollars) frontier at order ``n`` (a
        :class:`repro.cost.pareto.FrontierOutcome`)."""
        with self.perf.stage("search"):
            outcome = self._frontier_backend(budget, max_cost).frontier(n)
            self.perf.record_search(outcome.stats)
            self.perf.record_frontier(outcome)
            return outcome

    def pareto_many(
        self,
        ns: Sequence[int],
        budget: Optional[int] = None,
        max_cost: Optional[float] = None,
    ) -> List:
        """One frontier per size, sharing a single backend construction."""
        with self.perf.stage("search"):
            backend = self._frontier_backend(budget, max_cost)
            outcomes = backend.frontier_many(ns)
            for outcome in outcomes:
                self.perf.record_search(outcome.stats)
                self.perf.record_frontier(outcome)
            return outcomes


# -- verification -------------------------------------------------------------


@dataclass(frozen=True)
class Verifier:
    """Ground-truth comparisons over the evaluation grid."""

    evaluation: Dataset
    plan: object

    def measured_time(self, config: ClusterConfig, n: int) -> float:
        record = self.evaluation.lookup(config.as_flat_tuple(self.plan.kinds), n)
        return record.wall_time_s

    def actual_best(self, n: int) -> Tuple[ClusterConfig, float]:
        """Ground-truth optimum over the evaluation grid at order ``n``."""
        measured = [
            (config, self.measured_time(config, n))
            for config in self.plan.evaluation_configs
        ]
        return _actual_best(measured)
