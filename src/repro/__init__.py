"""repro — execution-time estimation for heterogeneous clusters.

A production-quality reproduction of Kishimoto & Ichikawa, *An
Execution-Time Estimation Model for Heterogeneous Clusters* (IPDPS 2004):
empirical N-T / P-T execution-time models with binning, model composition
and linear adjustment, driving optimal PE-subset and process-allocation
selection — together with the full simulation substrate the evaluation
needs (a calibrated heterogeneous cluster, an MPI-like messaging layer and
a phase-level HPL simulator).

Quick start::

    from repro import (
        kishimoto_cluster, EstimationPipeline, PipelineConfig, ClusterConfig,
    )

    spec = kishimoto_cluster()
    pipeline = EstimationPipeline(spec, PipelineConfig(protocol="nl", seed=1))
    best = pipeline.optimize(n=8000).best
    print(best.config.label(), best.estimate_s)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.cluster` — PE kinds, nodes, networks, configurations.
* :mod:`repro.simnet` — event engine, MPI-like API, MPICH curves, NetPIPE.
* :mod:`repro.hpl` — numeric LU, workload math, HPL performance simulator.
* :mod:`repro.measure` — campaign grids, datasets, cost accounting.
* :mod:`repro.core` — the paper's models and optimizer (the contribution).
* :mod:`repro.analysis` — tables, correlation scatter, reports.
* :mod:`repro.exts` — heuristic search, 2-D grids, a second application.
"""

from repro.cluster import (
    ClusterConfig,
    ClusterSpec,
    KindAllocation,
    NetworkSpec,
    Node,
    PEKind,
    kishimoto_cluster,
    synthetic_cluster,
)
from repro.core import (
    CompositionPolicy,
    EstimationPipeline,
    Estimator,
    ExhaustiveOptimizer,
    LinearAdjustment,
    ModelSelector,
    ModelStore,
    NTModel,
    PipelineConfig,
    PTModel,
    TimeModel,
)
from repro.errors import (
    ClusterError,
    ConfigurationError,
    FitError,
    MeasurementError,
    ModelError,
    ReproError,
    SearchError,
    SimulationError,
)
from repro.hpl import HPLParameters, HPLResult, PhaseTimes, run_hpl
from repro.hpl.driver import NoiseSpec
from repro.measure import Dataset, basic_plan, nl_plan, ns_plan, run_campaign

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterSpec",
    "CompositionPolicy",
    "ConfigurationError",
    "Dataset",
    "EstimationPipeline",
    "Estimator",
    "ExhaustiveOptimizer",
    "FitError",
    "HPLParameters",
    "HPLResult",
    "KindAllocation",
    "LinearAdjustment",
    "MeasurementError",
    "ModelError",
    "ModelSelector",
    "ModelStore",
    "NTModel",
    "NetworkSpec",
    "Node",
    "NoiseSpec",
    "PEKind",
    "PTModel",
    "PhaseTimes",
    "PipelineConfig",
    "ReproError",
    "SearchError",
    "SimulationError",
    "TimeModel",
    "__version__",
    "basic_plan",
    "kishimoto_cluster",
    "nl_plan",
    "ns_plan",
    "run_campaign",
    "run_hpl",
    "synthetic_cluster",
]
