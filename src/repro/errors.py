"""Exception hierarchy for :mod:`repro`.

Every error deliberately raised by this library derives from
:class:`ReproError`, so callers embedding the library can catch one type.
The subclasses partition failures by subsystem, mirroring the package
layout (cluster description, simulation, measurement, model fitting,
configuration search).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ClusterError(ReproError):
    """Invalid cluster description (PE kinds, nodes, network)."""


class ConfigurationError(ClusterError):
    """A :class:`~repro.cluster.config.ClusterConfig` is malformed or does
    not fit the cluster it is applied to (e.g. requests more PEs of a kind
    than the cluster owns)."""


class SimulationError(ReproError):
    """The HPL/application simulator was driven with impossible parameters
    (non-positive problem size, empty process set, …)."""


class MeasurementError(ReproError):
    """A measurement campaign or dataset operation failed (missing records,
    serialization mismatch, duplicate measurement keys)."""


class FitError(ReproError):
    """Least-squares extraction could not be performed (rank deficiency,
    too few observations for the number of coefficients)."""


class ModelError(ReproError):
    """An estimation model was queried outside its domain or assembled
    inconsistently (e.g. a P-T model asked about ``P < Mi``)."""


class SearchError(ReproError):
    """Configuration optimization failed (empty candidate set, estimator
    returning non-finite values)."""


class CalibrationError(ReproError):
    """The online-calibration loop was driven inconsistently (corrupt
    observation log, refit without observations, promoting an unknown
    model version, rollback with no prior promotion)."""
