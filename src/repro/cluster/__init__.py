"""Cluster substrate: processing elements, nodes, networks, configurations.

This subpackage describes *what hardware exists* (:class:`~repro.cluster.spec.
ClusterSpec`: PE kinds, nodes, network, intra-node transport) and *how it is
used for one run* (:class:`~repro.cluster.config.ClusterConfig`: how many PEs
of each kind participate and how many processes each invokes — the paper's
``(P1, M1, P2, M2)`` tuples, generalized to any number of PE kinds).

The performance-relevant behaviour of a PE (DGEMM efficiency ramp,
oversubscription penalty, memory capacity effects) lives in
:mod:`repro.cluster.pe`; :mod:`repro.cluster.presets` instantiates the
heterogeneous cluster of the paper's Table 1 with rates calibrated to the
Gflops the paper reports.
"""

from repro.cluster.config import ClusterConfig, KindAllocation
from repro.cluster.network import NetworkSpec
from repro.cluster.node import Node
from repro.cluster.pe import PEKind
from repro.cluster.placement import ProcessSlot, place_processes
from repro.cluster.presets import kishimoto_cluster, synthetic_cluster
from repro.cluster.serialize import load_cluster, save_cluster
from repro.cluster.spec import ClusterSpec

__all__ = [
    "ClusterConfig",
    "ClusterSpec",
    "KindAllocation",
    "NetworkSpec",
    "Node",
    "PEKind",
    "ProcessSlot",
    "kishimoto_cluster",
    "load_cluster",
    "place_processes",
    "save_cluster",
    "synthetic_cluster",
]
