"""Process placement: map MPI ranks onto physical processors.

Mirrors how a machinefile drives MPICH: hosts are listed in cluster order
and each host is repeated once per process it should run, so ranks are
assigned *contiguously per processor*, processors are filled node by node,
and kinds appear in configuration order.  For the paper's cluster this makes
rank 0..M1-1 the Athlon processes followed by the Pentium-II processes —
which also fixes the hop structure of HPL's ring broadcast (consecutive
ranks on the same node talk over shared memory; node boundaries cross the
network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.pe import PEKind
from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessSlot:
    """Where one MPI rank lives.

    Attributes
    ----------
    rank:
        MPI rank in the 1-by-P process grid.
    kind:
        Processor family of the hosting CPU.
    node_index:
        Index of the hosting node within the :class:`ClusterSpec`.
    node_name:
        Name of the hosting node (stable across spec edits).
    cpu_index:
        CPU slot within the node.
    co_resident:
        Total processes sharing this CPU (the kind's ``Mi``).
    """

    rank: int
    kind: PEKind
    node_index: int
    node_name: str
    cpu_index: int
    co_resident: int

    def same_cpu(self, other: "ProcessSlot") -> bool:
        return (
            self.node_index == other.node_index and self.cpu_index == other.cpu_index
        )

    def same_node(self, other: "ProcessSlot") -> bool:
        return self.node_index == other.node_index


def place_processes(spec: ClusterSpec, config: ClusterConfig) -> List[ProcessSlot]:
    """Assign every rank of ``config`` to a CPU of ``spec``.

    Raises :class:`ConfigurationError` if the configuration does not fit.
    Placement is deterministic: kinds in configuration order, nodes in
    cluster order, CPUs in index order, ranks contiguous per CPU.
    """
    config.validate_against(spec)

    slots: List[ProcessSlot] = []
    rank = 0
    for alloc in config.active:
        # Collect the CPUs of this kind in deterministic order.
        cpus: List[Tuple[int, str, int]] = []  # (node_index, node_name, cpu_index)
        for node_index, node in enumerate(spec.nodes):
            if node.kind.name != alloc.kind_name:
                continue
            for cpu_index in range(node.cpus):
                cpus.append((node_index, node.name, cpu_index))
        if len(cpus) < alloc.pe_count:
            raise ConfigurationError(
                f"{alloc.kind_name}: need {alloc.pe_count} CPUs, found {len(cpus)}"
            )
        kind = spec.kind(alloc.kind_name)
        for node_index, node_name, cpu_index in cpus[: alloc.pe_count]:
            for _ in range(alloc.procs_per_pe):
                slots.append(
                    ProcessSlot(
                        rank=rank,
                        kind=kind,
                        node_index=node_index,
                        node_name=node_name,
                        cpu_index=cpu_index,
                        co_resident=alloc.procs_per_pe,
                    )
                )
                rank += 1

    if rank != config.total_processes:
        raise AssertionError(
            f"placement produced {rank} ranks for P={config.total_processes}"
        )
    return slots


def ring_neighbors(slots: List[ProcessSlot]) -> List[Tuple[ProcessSlot, ProcessSlot]]:
    """Consecutive (sender, receiver) pairs of the rank ring, wrapping around.

    HPL's increasing-ring broadcast walks exactly these edges; the link type
    of each edge (same CPU / same node / network) determines its cost.
    """
    n = len(slots)
    if n == 0:
        return []
    return [(slots[i], slots[(i + 1) % n]) for i in range(n)]
