"""JSON (de)serialization of cluster descriptions.

A :class:`~repro.cluster.spec.ClusterSpec` describes hardware; users of
the library describe *their* cluster once and reuse it across campaigns,
so the description needs a stable on-disk form.  The format is plain JSON
with one object per PE kind, node, and network — see
``cluster_to_dict`` for the schema — and round-trips exactly
(property-tested).

The CLI accepts ``--cluster FILE`` wherever it would otherwise use the
paper's testbed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping

from repro.cluster.network import NetworkSpec
from repro.cluster.node import Node
from repro.cluster.pe import PEKind
from repro.cluster.spec import ClusterSpec
from repro.errors import ClusterError
from repro.simnet.mpich import MPICHVersion

#: Format 2 added the optional ``cost`` rate-card stanza; format-1
#: documents (no such stanza) still load, with ``cost=None`` — an
#: unpriced cluster behaves exactly as it did before the bump.
_FORMAT = 2
_READABLE_FORMATS = (1, 2)


def kind_to_dict(kind: PEKind) -> Dict[str, object]:
    """Serialize one PE kind (all performance-model knobs)."""
    return {
        "name": kind.name,
        "peak_gflops": kind.peak_gflops,
        "ramp_n": kind.ramp_n,
        "efficiency_floor": kind.efficiency_floor,
        "oversub_penalty": kind.oversub_penalty,
        "ctx_switch_s": kind.ctx_switch_s,
        "mem_copy_gbs": kind.mem_copy_gbs,
        "panel_overhead_s": kind.panel_overhead_s,
    }


def kind_from_dict(data: Mapping[str, object]) -> PEKind:
    """Inverse of :func:`kind_to_dict`; missing knobs take defaults."""
    return PEKind(
        name=str(data["name"]),
        peak_gflops=float(data["peak_gflops"]),
        ramp_n=float(data.get("ramp_n", 1400.0)),
        efficiency_floor=float(data.get("efficiency_floor", 0.04)),
        oversub_penalty=float(data.get("oversub_penalty", 0.06)),
        ctx_switch_s=float(data.get("ctx_switch_s", 2.0e-3)),
        mem_copy_gbs=float(data.get("mem_copy_gbs", 0.35)),
        panel_overhead_s=float(data.get("panel_overhead_s", 1.5e-3)),
    )


def network_to_dict(network: NetworkSpec) -> Dict[str, object]:
    """Serialize an inter-node network model."""
    return {
        "name": network.name,
        "latency_s": network.latency_s,
        "bandwidth_bps": network.bandwidth_bps,
        "half_saturation_bytes": network.half_saturation_bytes,
    }


def network_from_dict(data: Mapping[str, object]) -> NetworkSpec:
    """Inverse of :func:`network_to_dict`."""
    return NetworkSpec(
        name=str(data["name"]),
        latency_s=float(data["latency_s"]),
        bandwidth_bps=float(data["bandwidth_bps"]),
        half_saturation_bytes=float(data.get("half_saturation_bytes", 8192.0)),
    )


def mpich_to_dict(version: MPICHVersion) -> Dict[str, object]:
    """Serialize an intra-node transport curve (anchor table)."""
    return {
        "name": version.name,
        "latency_s": version.latency_s,
        "anchor_bytes": list(version.anchor_bytes),
        "anchor_bps": list(version.anchor_bps),
    }


def mpich_from_dict(data: Mapping[str, object]) -> MPICHVersion:
    """Inverse of :func:`mpich_to_dict`."""
    return MPICHVersion(
        name=str(data["name"]),
        latency_s=float(data["latency_s"]),
        anchor_bytes=tuple(float(v) for v in data["anchor_bytes"]),  # type: ignore[union-attr]
        anchor_bps=tuple(float(v) for v in data["anchor_bps"]),  # type: ignore[union-attr]
    )


def cluster_to_dict(spec: ClusterSpec) -> Dict[str, object]:
    """Schema: ``{format, name, kinds: [...], nodes: [{name, kind, cpus,
    memory_bytes, os_reserved_bytes}], network: {...}, intranode: {...},
    cost?: {rates: [...]}}`` — ``cost`` is present only on priced specs."""
    out: Dict[str, object] = {
        "format": _FORMAT,
        "name": spec.name,
        "kinds": [kind_to_dict(kind) for kind in spec.kinds],
        "nodes": [
            {
                "name": node.name,
                "kind": node.kind.name,
                "cpus": node.cpus,
                "memory_bytes": node.memory_bytes,
                "os_reserved_bytes": node.os_reserved_bytes,
            }
            for node in spec.nodes
        ],
        "network": network_to_dict(spec.network),
        "intranode": mpich_to_dict(spec.intranode),
    }
    if spec.cost is not None:
        # Imported at call time: repro.cost sits above the cluster layer
        # in the import graph (its package init reaches repro.core).
        from repro.cost.model import cost_model_to_dict

        out["cost"] = cost_model_to_dict(spec.cost)
    return out


def cluster_from_dict(data: Mapping[str, object]) -> ClusterSpec:
    """Inverse of :func:`cluster_to_dict`; validates kind references."""
    if data.get("format") not in _READABLE_FORMATS:
        raise ClusterError(f"unsupported cluster format {data.get('format')!r}")
    kinds = {}
    for kind_data in data["kinds"]:  # type: ignore[union-attr]
        kind = kind_from_dict(kind_data)
        kinds[kind.name] = kind
    nodes: List[Node] = []
    for node_data in data["nodes"]:  # type: ignore[union-attr]
        kind_name = str(node_data["kind"])
        if kind_name not in kinds:
            raise ClusterError(
                f"node {node_data['name']!r} references unknown kind {kind_name!r}"
            )
        nodes.append(
            Node(
                name=str(node_data["name"]),
                kind=kinds[kind_name],
                cpus=int(node_data.get("cpus", 1)),
                memory_bytes=int(node_data["memory_bytes"]),
                os_reserved_bytes=int(node_data.get("os_reserved_bytes", 0)),
            )
        )
    cost = None
    if "cost" in data:
        from repro.cost.model import cost_model_from_dict

        cost = cost_model_from_dict(data["cost"], origin="cost")  # type: ignore[arg-type]
    return ClusterSpec(
        name=str(data["name"]),
        nodes=tuple(nodes),
        network=network_from_dict(data["network"]),  # type: ignore[arg-type]
        intranode=mpich_from_dict(data["intranode"]),  # type: ignore[arg-type]
        cost=cost,
    )


def save_cluster(spec: ClusterSpec, path: Path | str) -> None:
    """Write a cluster description as indented JSON."""
    Path(path).write_text(json.dumps(cluster_to_dict(spec), indent=1))


def load_cluster(path: Path | str) -> ClusterSpec:
    """Read a cluster description written by :func:`save_cluster`."""
    return cluster_from_dict(json.loads(Path(path).read_text()))
