"""Run configurations: which PEs participate and with how many processes.

The paper denotes a configuration of its two-kind cluster by the tuple
``(P1, M1, P2, M2)``: ``P1`` Athlons each running ``M1`` processes and
``P2`` Pentium-IIs each running ``M2`` processes.  :class:`ClusterConfig`
generalizes this to any number of kinds while preserving the paper's
assumption that *PEs of the same kind get the same process count*
(Section 3.1, fourth assumption) — the constructor simply cannot express
anything else.

The total process count ``P = sum_i P_i * M_i`` is what enters the models;
HPL runs the problem on a 1-by-P process grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class KindAllocation:
    """Participation of one PE kind: ``pe_count`` PEs x ``procs_per_pe`` each."""

    kind_name: str
    pe_count: int
    procs_per_pe: int

    def __post_init__(self) -> None:
        if not self.kind_name:
            raise ConfigurationError("kind_name must be non-empty")
        if self.pe_count < 0:
            raise ConfigurationError(f"{self.kind_name}: pe_count must be >= 0")
        if self.pe_count > 0 and self.procs_per_pe < 1:
            raise ConfigurationError(
                f"{self.kind_name}: procs_per_pe must be >= 1 when PEs participate"
            )
        if self.pe_count == 0 and self.procs_per_pe != 0:
            raise ConfigurationError(
                f"{self.kind_name}: an unused kind must have procs_per_pe == 0"
            )

    @property
    def processes(self) -> int:
        return self.pe_count * self.procs_per_pe


@dataclass(frozen=True)
class ClusterConfig:
    """A full run configuration across all kinds, in kind order.

    Kinds with ``pe_count == 0`` may be included explicitly (to keep labels
    aligned with the paper's 4-tuples) or omitted entirely; both forms
    compare equal through :meth:`canonical`.
    """

    allocations: Tuple[KindAllocation, ...]

    def __post_init__(self) -> None:
        names = [a.kind_name for a in self.allocations]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate kind in configuration: {names}")
        if self.total_processes < 1:
            raise ConfigurationError("configuration must run at least one process")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def of(cls, **kind_to_pair: Tuple[int, int]) -> "ClusterConfig":
        """Build from keyword pairs, e.g. ``ClusterConfig.of(athlon=(1, 2), pentium2=(8, 1))``."""
        allocs = tuple(
            KindAllocation(name, pe, procs if pe > 0 else 0)
            for name, (pe, procs) in kind_to_pair.items()
        )
        return cls(allocs)

    @classmethod
    def from_tuple(
        cls, kinds: Sequence[str], values: Sequence[int]
    ) -> "ClusterConfig":
        """Build from the paper's flat tuple form ``(P1, M1, P2, M2, ...)``."""
        if len(values) != 2 * len(kinds):
            raise ConfigurationError(
                f"need 2 values per kind: {len(kinds)} kinds, {len(values)} values"
            )
        allocs = []
        for i, kind in enumerate(kinds):
            pe, procs = int(values[2 * i]), int(values[2 * i + 1])
            allocs.append(KindAllocation(kind, pe, procs if pe > 0 else 0))
        return cls(tuple(allocs))

    # -- queries ---------------------------------------------------------------

    @property
    def total_processes(self) -> int:
        """The paper's ``P``."""
        return sum(a.processes for a in self.allocations)

    @property
    def total_pes(self) -> int:
        return sum(a.pe_count for a in self.allocations)

    @property
    def active(self) -> Tuple[KindAllocation, ...]:
        """Allocations that actually contribute PEs."""
        return tuple(a for a in self.allocations if a.pe_count > 0)

    @property
    def is_single_kind(self) -> bool:
        return len(self.active) == 1

    @property
    def is_single_pe(self) -> bool:
        """True when one physical processor runs the whole job (``P == Mi``)."""
        return self.total_pes == 1

    def allocation(self, kind_name: str) -> KindAllocation:
        for a in self.allocations:
            if a.kind_name == kind_name:
                return a
        return KindAllocation(kind_name, 0, 0)

    def pe_count(self, kind_name: str) -> int:
        return self.allocation(kind_name).pe_count

    def procs_per_pe(self, kind_name: str) -> int:
        return self.allocation(kind_name).procs_per_pe

    def canonical(self) -> "ClusterConfig":
        """Drop zero allocations; canonical form for equality across labels."""
        return ClusterConfig(self.active)

    def as_flat_tuple(self, kinds: Optional[Sequence[str]] = None) -> Tuple[int, ...]:
        """The paper's ``(P1, M1, P2, M2, ...)`` rendering."""
        names = kinds if kinds is not None else [a.kind_name for a in self.allocations]
        out: list[int] = []
        for name in names:
            a = self.allocation(name)
            out.extend((a.pe_count, a.procs_per_pe))
        return tuple(out)

    def label(self, kinds: Optional[Sequence[str]] = None) -> str:
        """Compact label like the paper's ``"1,3,8,1"``."""
        return ",".join(str(v) for v in self.as_flat_tuple(kinds))

    def key(self) -> Tuple[Tuple[str, int, int], ...]:
        """Hashable canonical identity (kind, pe_count, procs) for active kinds."""
        return tuple((a.kind_name, a.pe_count, a.procs_per_pe) for a in self.active)

    # -- validation --------------------------------------------------------------

    def validate_against(self, spec: ClusterSpec) -> None:
        """Raise :class:`ConfigurationError` unless this config fits ``spec``."""
        available = spec.pe_counts()
        for a in self.active:
            if a.kind_name not in available:
                raise ConfigurationError(
                    f"kind {a.kind_name!r} not present in cluster {spec.name!r}"
                )
            if a.pe_count > available[a.kind_name]:
                raise ConfigurationError(
                    f"{a.kind_name}: requested {a.pe_count} PEs, cluster "
                    f"{spec.name!r} has {available[a.kind_name]}"
                )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterConfig({self.label()})"


def enumerate_configs(
    kinds: Sequence[str],
    pe_ranges: Mapping[str, Iterable[int]],
    proc_ranges: Mapping[str, Iterable[int]],
) -> Iterator[ClusterConfig]:
    """Enumerate the cross product of per-kind (PE count, procs/PE) choices.

    Configurations with zero total processes are skipped.  Kinds with
    ``pe_count == 0`` contribute a single degenerate choice regardless of
    their process range (``(0, 1)`` and ``(0, 6)`` are the same
    configuration), matching how the paper counts its 62 evaluation
    configurations.
    """
    choices_per_kind: list[list[Tuple[int, int]]] = []
    for kind in kinds:
        choices: list[Tuple[int, int]] = []
        for pe in pe_ranges[kind]:
            if pe == 0:
                choices.append((0, 0))
            else:
                for m in proc_ranges[kind]:
                    choices.append((pe, m))
        # de-duplicate while keeping order (multiple zero entries collapse)
        seen = set()
        unique = []
        for c in choices:
            if c not in seen:
                seen.add(c)
                unique.append(c)
        choices_per_kind.append(unique)

    def rec(i: int, acc: list[Tuple[int, int]]) -> Iterator[ClusterConfig]:
        if i == len(kinds):
            flat = [v for pair in acc for v in pair]
            if sum(pe * m for pe, m in acc) >= 1:
                yield ClusterConfig.from_tuple(kinds, flat)
            return
        for choice in choices_per_kind[i]:
            acc.append(choice)
            yield from rec(i + 1, acc)
            acc.pop()

    return rec(0, [])
