"""Whole-cluster description: nodes + network + intra-node transport.

:class:`ClusterSpec` is the immutable "hardware inventory" object passed to
the simulator, the measurement campaigns and (indirectly, via calibration)
the estimation models.  It validates structural invariants once at
construction so the rest of the code can assume a well-formed cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from repro.cluster.network import NetworkSpec
from repro.cluster.node import Node
from repro.cluster.pe import PEKind
from repro.errors import ClusterError
from repro.simnet.mpich import MPICHVersion

if TYPE_CHECKING:  # repro.cost imports the cluster layer, never the reverse
    from repro.cost.model import CostModel


@dataclass(frozen=True)
class ClusterSpec:
    """A heterogeneous cluster.

    Parameters
    ----------
    name:
        Human-readable cluster name.
    nodes:
        The machines, in deterministic order (this order also determines
        MPI rank placement, like a machinefile).
    network:
        Inter-node interconnect model.
    intranode:
        MPI shared-memory transport model (per-MPICH-version curves); used
        for messages between processes on the same *node*.
    cost:
        Optional rate card (:class:`repro.cost.model.CostModel`) pricing
        the cluster's PE kinds; ``None`` means the cluster is unpriced
        and behaves exactly as before the cost subsystem existed.
    """

    name: str
    nodes: Tuple[Node, ...]
    network: NetworkSpec
    intranode: MPICHVersion
    cost: Optional["CostModel"] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ClusterError(f"{self.name}: cluster must have at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ClusterError(f"{self.name}: duplicate node names: {names}")
        # A PE kind name must map to exactly one PEKind object.
        seen: Dict[str, PEKind] = {}
        for node in self.nodes:
            prior = seen.get(node.kind.name)
            if prior is not None and prior != node.kind:
                raise ClusterError(
                    f"{self.name}: kind {node.kind.name!r} has two different "
                    "definitions across nodes"
                )
            seen[node.kind.name] = node.kind
        if self.cost is not None:
            # Duck-typed: anything with kind_names() naming a subset of
            # this cluster's kinds (a rate for hardware the cluster does
            # not have is a description error, not a free default).
            for kind_name in self.cost.kind_names():
                if kind_name not in seen:
                    raise ClusterError(
                        f"{self.name}: rate card prices unknown kind "
                        f"{kind_name!r} (cluster kinds: {sorted(seen)})"
                    )

    # -- inventory queries ---------------------------------------------------

    @property
    def kinds(self) -> Tuple[PEKind, ...]:
        """Distinct PE kinds in first-appearance order."""
        out = []
        seen = set()
        for node in self.nodes:
            if node.kind.name not in seen:
                seen.add(node.kind.name)
                out.append(node.kind)
        return tuple(out)

    @property
    def kind_names(self) -> Tuple[str, ...]:
        return tuple(kind.name for kind in self.kinds)

    def kind(self, name: str) -> PEKind:
        """Look up a PE kind by name."""
        for k in self.kinds:
            if k.name == name:
                return k
        raise ClusterError(f"{self.name}: unknown PE kind {name!r}")

    def nodes_of_kind(self, name: str) -> Tuple[Node, ...]:
        return tuple(node for node in self.nodes if node.kind.name == name)

    def pe_count(self, name: str) -> int:
        """Total processors of a kind across all nodes."""
        return sum(node.cpus for node in self.nodes_of_kind(name))

    @property
    def total_pes(self) -> int:
        return sum(node.cpus for node in self.nodes)

    def pe_counts(self) -> Mapping[str, int]:
        """Mapping kind name -> available processor count."""
        return {kind.name: self.pe_count(kind.name) for kind in self.kinds}

    # -- derivation ----------------------------------------------------------

    def with_network(self, network: NetworkSpec) -> "ClusterSpec":
        """Same cluster on a different interconnect (what-if studies)."""
        return replace(self, network=network)

    def with_intranode(self, intranode: MPICHVersion) -> "ClusterSpec":
        """Same cluster with a different MPI shared-memory transport."""
        return replace(self, intranode=intranode)

    def with_cost(self, cost: Optional["CostModel"]) -> "ClusterSpec":
        """Same cluster under a different rate card (None = unpriced)."""
        return replace(self, cost=cost)

    def describe(self) -> str:
        """Multi-line human-readable inventory (the paper's Table 1 analog)."""
        lines = [f"Cluster {self.name!r}"]
        for node in self.nodes:
            lines.append(
                f"  {node.name}: {node.cpus} x {node.kind.name} "
                f"({node.kind.peak_gflops:.2f} Gflops peak/CPU), "
                f"{node.memory_bytes // (1024 * 1024)} MB"
            )
        lines.append(f"  network: {self.network.name}")
        lines.append(f"  intranode MPI: {self.intranode.name}")
        if self.cost is not None:
            for line in self.cost.describe().splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)
