"""Cluster nodes: a box with one or more CPUs of a single kind and RAM.

The paper's testbed has one single-CPU Athlon node and four dual-CPU
Pentium-II nodes, all with 768 MB of main memory (Table 1).  Memory capacity
matters: HPL allocates roughly ``N^2 * 8 / P`` bytes per process, and a node
whose resident processes together exceed its RAM starts paging — the
performance cliff of the paper's Figure 3(a) at N = 10000 on the single
Athlon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.pe import PEKind
from repro.errors import ClusterError
from repro.units import MB


@dataclass(frozen=True)
class Node:
    """One physical machine.

    Parameters
    ----------
    name:
        Unique node name (``"node1"``).
    kind:
        Processor family installed in this node.  Mixed-kind nodes are out
        of scope, as in the paper.
    cpus:
        Number of processors (the dual Pentium-II nodes have 2).
    memory_bytes:
        Main memory capacity.
    os_reserved_bytes:
        Memory not available to HPL (kernel, daemons, buffers).  Determines
        where the paging cliff sits relative to the nominal capacity.
    """

    name: str
    kind: PEKind
    cpus: int = 1
    memory_bytes: int = 768 * MB
    os_reserved_bytes: int = 48 * MB

    def __post_init__(self) -> None:
        if not self.name:
            raise ClusterError("Node.name must be non-empty")
        if self.cpus < 1:
            raise ClusterError(f"{self.name}: cpus must be >= 1, got {self.cpus}")
        if self.memory_bytes <= 0:
            raise ClusterError(f"{self.name}: memory_bytes must be positive")
        if not (0 <= self.os_reserved_bytes < self.memory_bytes):
            raise ClusterError(
                f"{self.name}: os_reserved_bytes must be in [0, memory_bytes)"
            )

    @property
    def usable_memory_bytes(self) -> int:
        """Bytes actually available to application processes."""
        return self.memory_bytes - self.os_reserved_bytes
