"""Processing-element kinds and their performance model.

A :class:`PEKind` captures everything the simulator needs to know about one
processor family:

* ``peak_gflops`` — asymptotic DGEMM rate of one processor running one
  process on a large, saturated problem (what ATLAS achieves, not the
  marketing peak).
* an **efficiency ramp**: measured HPL throughput rises steeply with problem
  size before saturating (the paper's own Table 3 shows the Athlon going
  from ~65 Mflops effective at N=400 to ~850 Mflops at N=6400).  We model
  the per-process efficiency as a *linear ramp with a knee*:
  ``e(n) = clip(n / ramp_n, efficiency_floor, 1)``.  This functional form is
  the deliberate *non-polynomial* physics of the reproduction.  Below the
  knee the execution time ``W(N)/rate ~ N^3 / (N/ramp_n)`` is exactly
  quadratic in ``N``, so a cubic fitted only to small problems (the NS
  model, N <= 1600) recovers essentially no ``N^3`` coefficient and
  collapses when extrapolated — the paper's Table 9 failure — while fits
  that cover the saturated region (Basic, NL) extrapolate well, as the
  paper's Tables 4 and 7 show.
* an **oversubscription model**: ``m`` processes time-share one CPU, so each
  gets ``1/m`` of it, *minus* a scheduling/communication-buffering overhead
  that grows with ``m`` (paper Figure 1).  In addition every panel step pays
  a fixed context-switch cost per extra co-resident process, which is why
  multiprocessing hurts small problems more than large ones (Figure 3(b)).
* a **memory-copy bandwidth** used for the row-interchange phase (``laswp``),
  which HPL's detailed timing accounts as communication.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ClusterError
from repro.units import GFLOPS


@dataclass(frozen=True)
class PEKind:
    """Immutable description of one processor family.

    Parameters
    ----------
    name:
        Unique identifier (``"athlon"``, ``"pentium2"``).
    peak_gflops:
        Saturated single-process DGEMM rate in Gflops.
    ramp_n:
        Knee of the efficiency ramp: below this problem order efficiency is
        ``n / ramp_n``; at and above it the kind runs at peak.
    efficiency_floor:
        Lower bound on efficiency; keeps tiny problems from having absurd
        (near-zero) rates and the simulator numerically safe.
    oversub_penalty:
        Fractional throughput lost per *extra* co-resident process
        (``m`` processes on one CPU sustain ``peak / (1 + p*(m-1))`` total).
    ctx_switch_s:
        Extra wall time per panel step per extra co-resident process,
        modelling scheduler and pipe/socket buffering overhead.
    mem_copy_gbs:
        Local memory-copy bandwidth in GB/s (drives ``laswp``).
    panel_overhead_s:
        Fixed per-panel-step overhead of one process (loop bookkeeping,
        cache warm-up); a major contributor to the small-``N`` inefficiency
        that the efficiency ramp summarizes at whole-run scale.
    """

    name: str
    peak_gflops: float
    ramp_n: float = 1400.0
    efficiency_floor: float = 0.04
    oversub_penalty: float = 0.06
    ctx_switch_s: float = 2.0e-3
    mem_copy_gbs: float = 0.35
    panel_overhead_s: float = 1.5e-3

    def __post_init__(self) -> None:
        if not self.name:
            raise ClusterError("PEKind.name must be non-empty")
        if self.peak_gflops <= 0:
            raise ClusterError(f"{self.name}: peak_gflops must be positive")
        if self.ramp_n <= 0:
            raise ClusterError(f"{self.name}: ramp_n must be positive")
        if not (0.0 < self.efficiency_floor <= 1.0):
            raise ClusterError(f"{self.name}: efficiency_floor must be in (0, 1]")
        if self.oversub_penalty < 0:
            raise ClusterError(f"{self.name}: oversub_penalty must be >= 0")

    # -- performance model -------------------------------------------------

    def efficiency(self, n: float) -> float:
        """DGEMM efficiency of a process working on a problem of order ``n``.

        Monotone non-decreasing in ``n``: a linear ramp ``n / ramp_n``
        clipped to ``[efficiency_floor, 1]``.  See the module docstring for
        why the ramp is linear rather than polynomial or exponential.
        """
        if n <= 0:
            return self.efficiency_floor
        ramp = float(n) / self.ramp_n
        return min(1.0, max(self.efficiency_floor, ramp))

    def oversub_factor(self, m: int) -> float:
        """Total-throughput retention factor when ``m`` processes share the CPU.

        ``m = 1`` returns 1.0; larger ``m`` loses ``oversub_penalty`` of
        throughput per extra process.
        """
        if m < 1:
            raise ClusterError(f"{self.name}: process count must be >= 1, got {m}")
        return 1.0 / (1.0 + self.oversub_penalty * (m - 1))

    def process_rate(self, n: float, m: int) -> float:
        """Sustained flop/s of *one* process when ``m`` share this CPU."""
        total = self.peak_gflops * GFLOPS * self.efficiency(n) * self.oversub_factor(m)
        return total / m

    def pe_rate(self, n: float, m: int) -> float:
        """Aggregate flop/s of the CPU across its ``m`` co-resident processes."""
        return self.process_rate(n, m) * m

    def step_overhead(self, m: int) -> float:
        """Per-panel-step wall overhead of a process when ``m`` share the CPU."""
        if m < 1:
            raise ClusterError(f"{self.name}: process count must be >= 1, got {m}")
        return self.panel_overhead_s + self.ctx_switch_s * (m - 1)

    def mem_copy_rate(self) -> float:
        """Local memory-copy bandwidth in bytes/s."""
        return self.mem_copy_gbs * 1e9

    # -- convenience ---------------------------------------------------------

    def scaled(self, name: str, rate_factor: float) -> "PEKind":
        """A new kind identical to this one but with the peak rate scaled.

        Used by tests and by synthetic clusters to derive families of
        related processors.
        """
        if rate_factor <= 0:
            raise ClusterError("rate_factor must be positive")
        return replace(self, name=name, peak_gflops=self.peak_gflops * rate_factor)
