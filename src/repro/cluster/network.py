"""Inter-node network models.

The paper's assumptions (Section 3.1) let us keep the network simple: it is
homogeneous, topology-free, and sender-independent.  A message of ``b`` bytes
between two *different nodes* therefore costs::

    t(b) = latency + b / bandwidth(b)

with an optionally size-dependent effective bandwidth (small messages never
reach line rate because of per-packet overheads; we model that with a
half-saturation size, the standard "n-half" parameterization from the
LogP/Hockney literature).

Intra-node transfers do not use this model — they go through the MPI
library's shared-memory path, which is modelled per MPICH version in
:mod:`repro.simnet.mpich` because that difference is the subject of the
paper's Figures 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusterError
from repro.units import GBPS_IN_BYTES, MBPS_IN_BYTES, USEC


@dataclass(frozen=True)
class NetworkSpec:
    """Homogeneous switched network between nodes.

    Parameters
    ----------
    name:
        Identifier (``"100base-tx"``).
    latency_s:
        Per-message latency (software + wire), seconds.
    bandwidth_bps:
        Asymptotic bandwidth in **bytes** per second.
    half_saturation_bytes:
        Message size at which half the asymptotic bandwidth is achieved.
        Zero disables the size dependence (ideal network).
    """

    name: str
    latency_s: float
    bandwidth_bps: float
    half_saturation_bytes: float = 8192.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ClusterError(f"{self.name}: latency_s must be >= 0")
        if self.bandwidth_bps <= 0:
            raise ClusterError(f"{self.name}: bandwidth_bps must be positive")
        if self.half_saturation_bytes < 0:
            raise ClusterError(f"{self.name}: half_saturation_bytes must be >= 0")

    def effective_bandwidth(self, nbytes):
        """Effective bandwidth (bytes/s) for messages of ``nbytes``.

        Accepts scalars or NumPy arrays and broadcasts.
        """
        b = np.asarray(nbytes, dtype=float)
        if self.half_saturation_bytes == 0.0:
            result = np.full_like(b, self.bandwidth_bps)
        else:
            result = self.bandwidth_bps * b / (b + self.half_saturation_bytes)
            result = np.where(b <= 0, self.bandwidth_bps, result)
        return result if result.ndim else float(result)

    def message_time(self, nbytes):
        """Transfer time in seconds for a message of ``nbytes`` (scalar or array)."""
        b = np.asarray(nbytes, dtype=float)
        if np.any(b < 0):
            raise ClusterError("message size must be >= 0")
        bw = np.asarray(self.effective_bandwidth(np.maximum(b, 1.0)), dtype=float)
        t = self.latency_s + b / bw
        return t if t.ndim else float(t)

    def throughput(self, nbytes) -> float:
        """Achieved throughput (bytes/s) including latency, NetPIPE-style."""
        b = np.asarray(nbytes, dtype=float)
        t = np.asarray(self.message_time(b), dtype=float)
        result = np.where(t > 0, b / np.maximum(t, 1e-30), 0.0)
        return result if result.ndim else float(result)


def fast_ethernet() -> NetworkSpec:
    """100base-TX as used for all of the paper's measurements.

    100 Mbit/s line rate; ~90 Mbit/s achievable with TCP; MPICH-over-TCP
    latency on 2001-era hardware was on the order of 70 microseconds.
    """
    return NetworkSpec(
        name="100base-tx",
        latency_s=70 * USEC,
        bandwidth_bps=90 * MBPS_IN_BYTES,
        half_saturation_bytes=6 * 1024,
    )


def gigabit_sx() -> NetworkSpec:
    """1000base-SX (NetGear GA-620), present in the testbed but unused for
    the paper's measurements; provided for completeness and what-if studies."""
    return NetworkSpec(
        name="1000base-sx",
        latency_s=55 * USEC,
        bandwidth_bps=0.65 * GBPS_IN_BYTES,
        half_saturation_bytes=16 * 1024,
    )


def ideal_network(bandwidth_bps: float = 1e12) -> NetworkSpec:
    """Zero-latency, size-independent network for unit tests and ablations."""
    return NetworkSpec(
        name="ideal",
        latency_s=0.0,
        bandwidth_bps=bandwidth_bps,
        half_saturation_bytes=0.0,
    )
