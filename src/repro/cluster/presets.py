"""Concrete clusters, calibrated against the paper's published numbers.

:func:`kishimoto_cluster` builds the heterogeneous testbed of the paper's
Table 1: one AMD Athlon 1.33 GHz node plus four dual-CPU Intel Pentium-II
400 MHz nodes, 768 MB each, connected by 100base-TX (the interface used for
all measurements) and running MPICH shared memory intra-node.

Calibration anchors (all from the paper, see DESIGN.md section 2):

* a single Athlon process sustains ~1.07 Gflops at N = 3200 (Table 4:
  configuration ``1,1,0,0`` runs N = 3200 in 20.4 s) and ~1.05–1.15 at
  N >= 6400 (Figure 1);
* one Athlon ~ 4–5 Pentium-IIs: "P2 x 5" matches "Athlon x 1" at large N
  (Figure 3(a)); the paper's Table 3 totals for Pentium-II (10950 s at
  N = 6400 over 48 configurations) imply ~0.24 Gflops per Pentium-II
  process at saturation;
* N = 1600 on the Athlon alone takes 2.82 s (Table 7), placing the Athlon
  efficiency knee near N ~ 1800;
* the Athlon pages at N = 10000 (Figure 3(a)): the 800 MB matrix exceeds
  768 MB of RAM.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.network import NetworkSpec, fast_ethernet, gigabit_sx
from repro.cluster.node import Node
from repro.cluster.pe import PEKind
from repro.cluster.spec import ClusterSpec
from repro.errors import ClusterError
from repro.simnet.mpich import MPICHVersion, mpich_1_2_1, mpich_1_2_2, mpich_1_2_5
from repro.units import MB


def athlon_1333() -> PEKind:
    """AMD Athlon 1.33 GHz (Thunderbird) with ATLAS 3.2.1 DGEMM."""
    return PEKind(
        name="athlon",
        peak_gflops=1.10,
        ramp_n=1800.0,
        efficiency_floor=0.05,
        oversub_penalty=0.05,
        ctx_switch_s=3.0e-3,
        mem_copy_gbs=0.50,
        panel_overhead_s=1.2e-3,
    )


def pentium2_400() -> PEKind:
    """Intel Pentium-II 400 MHz with ATLAS 3.2.1 DGEMM."""
    return PEKind(
        name="pentium2",
        peak_gflops=0.24,
        ramp_n=1800.0,
        efficiency_floor=0.05,
        oversub_penalty=0.05,
        ctx_switch_s=4.0e-3,
        mem_copy_gbs=0.22,
        panel_overhead_s=2.0e-3,
    )


_NETWORKS = {
    "100base-tx": fast_ethernet,
    "1000base-sx": gigabit_sx,
}

_MPICH = {
    "1.2.1": mpich_1_2_1,
    "1.2.2": mpich_1_2_2,
    "1.2.5": mpich_1_2_5,
}


def kishimoto_cluster(
    mpich: str = "1.2.5",
    network: str = "100base-tx",
) -> ClusterSpec:
    """The paper's testbed (Table 1).

    Parameters
    ----------
    mpich:
        MPI library version for intra-node transport: ``"1.2.1"``,
        ``"1.2.2"`` or ``"1.2.5"`` (the paper's final measurements use
        1.2.5; Figures 1–2 compare 1.2.1 vs 1.2.2).
    network:
        ``"100base-tx"`` (used for all of the paper's measurements) or
        ``"1000base-sx"`` (installed but unused).
    """
    if mpich not in _MPICH:
        raise ClusterError(f"unknown MPICH version {mpich!r}; have {sorted(_MPICH)}")
    if network not in _NETWORKS:
        raise ClusterError(f"unknown network {network!r}; have {sorted(_NETWORKS)}")
    ath = athlon_1333()
    p2 = pentium2_400()
    nodes = [Node(name="node1", kind=ath, cpus=1, memory_bytes=768 * MB)]
    nodes += [
        Node(name=f"node{i}", kind=p2, cpus=2, memory_bytes=768 * MB)
        for i in range(2, 6)
    ]
    return ClusterSpec(
        name="kishimoto-tut",
        nodes=tuple(nodes),
        network=_NETWORKS[network](),
        intranode=_MPICH[mpich](),
    )


def single_node_cluster(
    kind: Optional[PEKind] = None,
    cpus: int = 1,
    memory_mb: int = 768,
    mpich: str = "1.2.2",
) -> ClusterSpec:
    """One node, for single-PE studies (the paper's Figure 1 setup)."""
    pe = kind if kind is not None else athlon_1333()
    return ClusterSpec(
        name=f"single-{pe.name}",
        nodes=(Node(name="node1", kind=pe, cpus=cpus, memory_bytes=memory_mb * MB),),
        network=fast_ethernet(),
        intranode=_MPICH[mpich](),
    )


def synthetic_cluster(
    kind_gflops: Sequence[float],
    nodes_per_kind: int = 2,
    cpus_per_node: int = 1,
    memory_mb: int = 1024,
    network: Optional[NetworkSpec] = None,
    intranode: Optional[MPICHVersion] = None,
) -> ClusterSpec:
    """A parametric many-kind cluster for scalability and heuristic-search
    studies (the paper's future-work direction).

    ``kind_gflops`` gives the peak rate of each synthetic kind; each kind
    gets ``nodes_per_kind`` nodes of ``cpus_per_node`` CPUs.
    """
    if not kind_gflops:
        raise ClusterError("need at least one kind")
    base = pentium2_400()
    nodes = []
    for k, rate in enumerate(kind_gflops):
        kind = base.scaled(f"kind{k}", rate / base.peak_gflops)
        for j in range(nodes_per_kind):
            nodes.append(
                Node(
                    name=f"k{k}n{j}",
                    kind=kind,
                    cpus=cpus_per_node,
                    memory_bytes=memory_mb * MB,
                )
            )
    return ClusterSpec(
        name=f"synthetic-{len(kind_gflops)}kinds",
        nodes=tuple(nodes),
        network=network if network is not None else fast_ethernet(),
        intranode=intranode if intranode is not None else mpich_1_2_2(),
    )
