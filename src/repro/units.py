"""Unit constants and conversion helpers used throughout :mod:`repro`.

All internal computation uses SI base units: **seconds** for time, **bytes**
for data volume, and **flop/s** for computation rates.  The constants below
exist so that call sites read naturally (``1.33 * GHZ``, ``768 * MB``) and so
that unit bugs are caught by tests in one place instead of being scattered
across the codebase.

The paper reports Gflops (HPL convention) and block sizes in KB (NetPIPE
convention); :func:`gflops` and :func:`to_gbps` convert measured values back
into those reporting units.
"""

from __future__ import annotations

# --- data volume ------------------------------------------------------------
KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

#: Size of a double-precision floating point value, the element type of HPL.
DOUBLE: int = 8

# --- rates ------------------------------------------------------------------
KFLOPS: float = 1e3
MFLOPS: float = 1e6
GFLOPS: float = 1e9

KHZ: float = 1e3
MHZ: float = 1e6
GHZ: float = 1e9

#: Bits per second helpers (network vendors quote bits, we compute in bytes).
MBPS_IN_BYTES: float = 1e6 / 8.0
GBPS_IN_BYTES: float = 1e9 / 8.0

# --- time -------------------------------------------------------------------
USEC: float = 1e-6
MSEC: float = 1e-3
MINUTE: float = 60.0
HOUR: float = 3600.0


def gflops(flops: float, seconds: float) -> float:
    """Return the rate ``flops / seconds`` expressed in Gflops.

    Raises :class:`ValueError` for non-positive durations, which in this
    codebase always indicate a simulation bug rather than a legitimate
    measurement.
    """
    if seconds <= 0.0:
        raise ValueError(f"non-positive duration: {seconds!r} s")
    return flops / seconds / GFLOPS


def to_gbps(bytes_per_second: float) -> float:
    """Convert a byte rate into Gbit/s (the unit of the paper's Figure 2)."""
    return bytes_per_second * 8.0 / 1e9


def matrix_bytes(n: int, element_size: int = DOUBLE) -> int:
    """Bytes of a dense square matrix of order ``n``."""
    if n < 0:
        raise ValueError(f"negative matrix order: {n}")
    return n * n * element_size


def pretty_bytes(num_bytes: float) -> str:
    """Human-readable rendering of a byte count (``'768.0 MB'``)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def pretty_seconds(seconds: float) -> str:
    """Human-readable rendering of a duration (``'1h 02m'``, ``'3.2 s'``)."""
    if seconds < 0:
        return "-" + pretty_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < MINUTE:
        return f"{seconds:.1f} s"
    if seconds < HOUR:
        minutes, secs = divmod(seconds, MINUTE)
        return f"{int(minutes)}m {secs:04.1f}s"
    hours, rem = divmod(seconds, HOUR)
    minutes = rem / MINUTE
    return f"{int(hours)}h {int(minutes):02d}m"
