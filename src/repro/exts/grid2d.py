"""Two-dimensional process grids (paper Section 3.1: "our scheme is
universally applicable to any other process grid").

The paper's experiments use a ``1 x P`` grid; real HPL runs on ``Pr x Q``.
This module provides:

* :class:`GridShape` and shape enumeration/selection helpers;
* :func:`simulate_schedule_2d` — the 2-D generalization of the schedule
  walker.  Relative to the 1-D walker, a ``Pr x Q`` grid changes the cost
  structure exactly the way ScaLAPACK folklore says it should:

  - panel factorization is cooperative across the ``Pr`` processes of the
    owning column and pays a per-column pivot all-reduce (``mxswp`` grows
    from O(1) to O(nb log Pr) messages per step);
  - the panel broadcast travels each process *row* (rings of ``Q``), with
    per-hop payload ``(m/Pr) * nb`` — total broadcast volume per process
    shrinks by ``Pr``;
  - row interchanges (``laswp``) become inter-process traffic within
    columns with probability ``(Pr-1)/Pr`` per swapped row.

  With ``Pr = 1`` every formula degenerates to the 1-D walker's (tested).

The estimation models consume the resulting per-kind Ta/Tc exactly as for
1-D runs — nothing in :mod:`repro.core` knows the grid shape, which is the
paper's universality claim in executable form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.hpl import workload
from repro.hpl.memory import node_slowdowns
from repro.hpl.schedule import HPLParameters, ScheduleResult, _noise_or_ones
from repro.hpl.timing import PHASE_NAMES
from repro.simnet.collectives import ring_delivery_times
from repro.simnet.transport import LinkKind, Transport


@dataclass(frozen=True)
class GridShape:
    """A ``Pr x Q`` process grid (``Pr * Q`` processes, column-major ranks
    as HPL assigns them)."""

    pr: int
    q: int

    def __post_init__(self) -> None:
        if self.pr < 1 or self.q < 1:
            raise SimulationError(f"invalid grid {self.pr}x{self.q}")

    @property
    def size(self) -> int:
        return self.pr * self.q

    def coords(self, rank: int) -> tuple[int, int]:
        """(row, column) of a rank, column-major."""
        if not (0 <= rank < self.size):
            raise SimulationError(f"rank {rank} outside grid {self.pr}x{self.q}")
        return rank % self.pr, rank // self.pr

    def rank_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.pr and 0 <= col < self.q):
            raise SimulationError(f"({row},{col}) outside grid {self.pr}x{self.q}")
        return col * self.pr + row

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.pr}x{self.q}"


def grid_shapes(p: int) -> List[GridShape]:
    """All factorizations ``Pr x Q = p`` with ``Pr <= Q`` (HPL convention:
    flat-or-square grids, never tall)."""
    if p < 1:
        raise SimulationError(f"process count must be >= 1, got {p}")
    shapes = []
    for pr in range(1, int(math.isqrt(p)) + 1):
        if p % pr == 0:
            shapes.append(GridShape(pr, p // pr))
    return shapes


def near_square_shape(p: int) -> GridShape:
    """The most square ``Pr <= Q`` factorization of ``p``."""
    return grid_shapes(p)[-1]


def simulate_schedule_2d(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    shape: Optional[GridShape] = None,
    params: Optional[HPLParameters] = None,
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> ScheduleResult:
    """Simulate HPL of order ``n`` on a ``Pr x Q`` grid.

    ``shape`` defaults to ``1 x P``; its size must equal the configuration's
    total process count.
    """
    if n < 1:
        raise SimulationError(f"matrix order must be >= 1, got {n}")
    params = params if params is not None else HPLParameters()
    slots = place_processes(spec, config)
    p = len(slots)
    shape = shape if shape is not None else GridShape(1, p)
    if shape.size != p:
        raise SimulationError(
            f"grid {shape} has {shape.size} slots for P={p} processes"
        )
    transport = Transport(spec, slots)
    f_comp = _noise_or_ones(compute_noise, p, "compute_noise")
    f_comm = _noise_or_ones(comm_noise, p, "comm_noise")

    paging = node_slowdowns(spec, slots, n, nb=params.nb, slope=params.paging_slope)
    update_rate = np.empty(p)
    pfact_rate = np.empty(p)
    laswp_rate = np.empty(p)
    step_overhead = np.empty(p)
    for r, slot in enumerate(slots):
        kind, m = slot.kind, slot.co_resident
        update_rate[r] = kind.process_rate(n, m) / paging[r]
        pfact_rate[r] = kind.process_rate(n, m) * params.pfact_efficiency / paging[r]
        laswp_rate[r] = kind.mem_copy_rate() / m / paging[r]
        step_overhead[r] = kind.step_overhead(m)

    co_res = np.array([slot.co_resident for slot in slots], dtype=float)
    rows = np.array([shape.coords(r)[0] for r in range(p)])
    cols = np.array([shape.coords(r)[1] for r in range(p)])

    # Row rings: members of grid row i in column order; per-row edge costs
    # depend on the actual placement links, so precompute member ranks.
    row_members = [np.where(rows == i)[0] for i in range(shape.pr)]

    net_latency = spec.network.latency_s

    phase = {name: np.zeros(p) for name in PHASE_NAMES}
    wall = 0.0
    nb = params.nb
    nblocks = (n + nb - 1) // nb
    last_block_cols = n - (nblocks - 1) * nb

    for k in range(nblocks):
        j0 = k * nb
        width = min(nb, n - j0)
        m_rows = n - j0
        owner_col = k % shape.q

        # Trailing columns per grid column (block-cyclic over columns).
        if k + 1 < nblocks:
            trailing = np.arange(k + 1, nblocks)
            col_counts = np.bincount(trailing % shape.q, minlength=shape.q).astype(float)
            q_cols = col_counts * nb
            q_cols[(nblocks - 1) % shape.q] -= nb - last_block_cols
        else:
            q_cols = np.zeros(shape.q)
        q_local = q_cols[cols]  # local trailing columns per process

        in_owner_col = cols == owner_col
        local_panel_rows = m_rows / shape.pr  # rows of the panel per process

        # Cooperative panel factorization + pivot all-reduce per column.
        t_pfact = np.where(
            in_owner_col,
            workload.pfact_flops(m_rows, width) / shape.pr / pfact_rate * f_comp,
            0.0,
        )
        allreduce_hops = math.ceil(math.log2(shape.pr)) if shape.pr > 1 else 0
        t_mxswp = np.where(
            in_owner_col,
            width * (params.mxswp_per_column_s + allreduce_hops * net_latency) * f_comm,
            0.0,
        )
        pfact_head = float(np.max((t_pfact + t_mxswp)[in_owner_col]))

        phase["pfact"] += t_pfact
        phase["mxswp"] += t_mxswp
        step = t_pfact + t_mxswp

        # Panel broadcast along each grid row (ring of Q).
        if shape.q > 1:
            nbytes = workload.panel_bytes(local_panel_rows, width)
            forward_slow_full = 1.0 + params.forward_interference * (co_res - 1.0)
            for row_index in range(shape.pr):
                members = row_members[row_index]
                order = members[np.argsort(cols[members])]
                hops = np.empty(len(order))
                for i in range(len(order)):
                    a = int(order[i])
                    b = int(order[(i + 1) % len(order)])
                    base = transport.message_time(a, b, nbytes)
                    weight = (
                        1.0
                        if transport.link_kind(a, b) is LinkKind.NETWORK
                        else params.intranode_interference_weight
                    )
                    hops[i] = base * (
                        1.0
                        + params.forward_interference * (co_res[a] - 1.0) * weight
                    )
                delivery = ring_delivery_times(
                    hops, root=owner_col, pipeline_factor=params.ring_pipeline_factor
                )
                wait = pfact_head * params.pfact_wait_factor + delivery
                for i, rank in enumerate(order):
                    if cols[rank] == owner_col:
                        send = hops[i] * f_comm[rank]
                        phase["bcast"][rank] += send
                        step[rank] += send
                    else:
                        w = wait[i] * f_comm[rank]
                        phase["bcast"][rank] += w
                        step[rank] = max(step[rank], w)

        # Row interchanges: fraction (Pr-1)/Pr of swapped rows cross
        # process boundaries within the column (network), the rest are
        # local memory copies.
        swap_bytes = workload.laswp_bytes(width, q_local)
        cross_fraction = (shape.pr - 1) / shape.pr
        t_laswp = (
            swap_bytes * (1 - cross_fraction) / laswp_rate
            + swap_bytes * cross_fraction / spec.network.bandwidth_bps
            + (width * net_latency if shape.pr > 1 else 0.0)
        ) * f_comm
        local_m = m_rows / shape.pr
        t_update = np.array(
            [workload.update_flops(int(local_m), width, int(qq)) for qq in q_local]
        ) / update_rate * f_comp
        t_over = step_overhead * f_comp

        phase["laswp"] += t_laswp
        phase["update"] += t_update + t_over
        step += t_laswp + t_update + t_over
        wall += float(np.max(step))

    t_uptrsv = (
        workload.solve_flops(n) / p / update_rate + params.uptrsv_latency_s * p
    ) * f_comp
    phase["uptrsv"] += t_uptrsv
    wall += float(np.max(t_uptrsv))

    return ScheduleResult(
        n=n, params=params, slots=slots, phase_arrays=phase, wall_time_s=wall
    )
