"""Extensions along the paper's future-work directions.

The paper's conclusion names three open ends; each has a module here:

* "for larger clusters, it is essential to find a way to reduce the search
  space.  Approximation algorithms (i.e., heuristics) are also worth
  considering" — :mod:`repro.exts.heuristics` (greedy growth, hill
  climbing, simulated annealing, all benchmarked against exhaustive
  enumeration);
* "though we examine only the case of a 1-by-P process grid ... our scheme
  is universally applicable to any other process grid" —
  :mod:`repro.exts.grid2d` (P x Q block-cyclic grids and a 2-D variant of
  the schedule simulator);
* "this study examined one specific application (HPL), but other parallel
  applications should be also examined" — :mod:`repro.exts.apps` (SUMMA
  matrix multiplication and Cholesky factorization, both plugging into
  the same measurement/model/optimization pipeline unchanged);

plus :mod:`repro.exts.baselines`, which implements the *related-work*
approach the paper argues against (speed-weighted heterogeneous
distribution in rewritten applications) so the comparison can be run
rather than merely cited.
"""

from repro.exts.apps import run_cholesky, run_summa
from repro.exts.baselines import run_hbc, simulate_hbc, weighted_owner_sequence
from repro.exts.grid2d import GridShape, grid_shapes, simulate_schedule_2d
from repro.exts.heuristics import (
    GreedyGrowth,
    HillClimber,
    SearchStats,
    SimulatedAnnealing,
    full_candidate_space,
)

__all__ = [
    "GreedyGrowth",
    "GridShape",
    "HillClimber",
    "SearchStats",
    "SimulatedAnnealing",
    "full_candidate_space",
    "grid_shapes",
    "run_cholesky",
    "run_hbc",
    "run_summa",
    "simulate_hbc",
    "simulate_schedule_2d",
    "weighted_owner_sequence",
]
