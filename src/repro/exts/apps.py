"""A second application: SUMMA-style matrix multiplication.

The paper closes with "this study examined one specific application (HPL),
but other parallel applications should be also examined".  This module
provides one: ``C = A @ B`` by the SUMMA algorithm on the same ``1 x P``
column-block-cyclic layout — each step broadcasts one ``N x nb`` panel of
``A`` along the process ring and every process multiplies it into its
local columns of ``B``/``C``.

Crucially, *nothing else changes*: :func:`run_summa` has the same signature
as :func:`repro.hpl.driver.run_hpl`, returns the same result shape with the
same per-kind ``Ta``/``Tc`` decomposition (``update`` + ``bcast``; SUMMA has
no pivoting, swaps or back-substitution), and therefore plugs into the
measurement campaigns, the N-T/P-T fitting, composition, adjustment and the
optimizer unchanged — demonstrated end-to-end by
``examples/other_application.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.hpl import workload
from repro.hpl.driver import HPLResult, NoiseSpec
from repro.hpl.memory import node_slowdowns
from repro.hpl.schedule import HPLParameters, ScheduleResult, _noise_or_ones
from repro.hpl.timing import PHASE_NAMES
from repro.rng import stream
from repro.simnet.collectives import ring_delivery_times
from repro.simnet.transport import LinkKind, Transport
from repro.units import gflops as to_gflops


def summa_flops(n: int) -> float:
    """Flops of a dense ``n x n`` matrix multiplication."""
    if n < 0:
        raise SimulationError(f"negative order {n}")
    return 2.0 * float(n) ** 3


class SummaResult(HPLResult):
    """SUMMA measurement; differs from HPL only in the Gflops denominator."""

    @property
    def gflops(self) -> float:
        return to_gflops(summa_flops(self.n), self.wall_time_s)


def simulate_summa(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> ScheduleResult:
    """Panel-by-panel SUMMA walk over a placed process set.

    Memory: SUMMA keeps three matrices resident (A, B, C), so the paging
    model sees 3x the per-process footprint of HPL.
    """
    if n < 1:
        raise SimulationError(f"matrix order must be >= 1, got {n}")
    params = params if params is not None else HPLParameters()
    slots = place_processes(spec, config)
    p = len(slots)
    transport = Transport(spec, slots)
    f_comp = _noise_or_ones(compute_noise, p, "compute_noise")
    f_comm = _noise_or_ones(comm_noise, p, "comm_noise")

    # Three resident matrices: reuse the node paging model at 3x pressure
    # by simulating a 1.73x larger order (bytes scale with n^2).
    paging = node_slowdowns(
        spec, slots, int(n * np.sqrt(3.0)), nb=params.nb, slope=params.paging_slope
    )
    update_rate = np.empty(p)
    step_overhead = np.empty(p)
    for r, slot in enumerate(slots):
        kind, m = slot.kind, slot.co_resident
        update_rate[r] = kind.process_rate(n, m) / paging[r]
        step_overhead[r] = kind.step_overhead(m)

    co_res = np.array([slot.co_resident for slot in slots], dtype=float)
    edge_weight = np.array(
        [
            1.0 if kind is LinkKind.NETWORK else params.intranode_interference_weight
            for kind in transport.ring_link_kinds()
        ]
    )
    forward_slow = 1.0 + params.forward_interference * (co_res - 1.0) * edge_weight

    # Local column counts (block-cyclic; constant through the run — SUMMA
    # has no shrinking trailing matrix).
    nb = params.nb
    nblocks = (n + nb - 1) // nb
    counts = np.bincount(np.arange(nblocks) % p, minlength=p).astype(float) * nb
    counts[(nblocks - 1) % p] -= nblocks * nb - n
    ranks = np.arange(p)

    phase = {name: np.zeros(p) for name in PHASE_NAMES}
    wall = 0.0
    for k in range(nblocks):
        width = min(nb, n - k * nb)
        owner = k % p
        step = np.zeros(p)
        if p > 1:
            nbytes = float(n) * width * 8.0
            hops = transport.ring_hop_times(nbytes) * forward_slow
            delivery = ring_delivery_times(
                hops, root=owner, pipeline_factor=params.ring_pipeline_factor
            )
            non_owner = ranks != owner
            wait = delivery * f_comm
            send = hops[owner] * f_comm[owner]
            phase["bcast"][owner] += send
            phase["bcast"][non_owner] += wait[non_owner]
            step[owner] += send
            step[non_owner] = np.maximum(step[non_owner], wait[non_owner])
        t_update = (2.0 * n * width * counts) / update_rate * f_comp
        t_over = step_overhead * f_comp
        phase["update"] += t_update + t_over
        step += t_update + t_over
        wall += float(np.max(step))

    return ScheduleResult(
        n=n, params=params, slots=slots, phase_arrays=phase, wall_time_s=wall
    )


def cholesky_flops(n: int) -> float:
    """Flops of a dense Cholesky factorization (``n^3/3`` to leading order)."""
    if n < 0:
        raise SimulationError(f"negative order {n}")
    return float(n) ** 3 / 3.0 + 0.5 * float(n) ** 2


class CholeskyResult(HPLResult):
    """Cholesky measurement; Gflops uses the ``n^3/3`` count."""

    @property
    def gflops(self) -> float:
        return to_gflops(cholesky_flops(self.n), self.wall_time_s)


def simulate_cholesky(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> ScheduleResult:
    """Panel-by-panel right-looking Cholesky on the 1 x P layout.

    The application Kalinov & Lastovetsky studied ([7] in the paper):
    structurally like LU with half the work (symmetric trailing update,
    only the lower triangle), no pivoting (so no ``mxswp``/``laswp``) and
    a shrinking panel broadcast.  A third application for the pipeline's
    generality claim.
    """
    if n < 1:
        raise SimulationError(f"matrix order must be >= 1, got {n}")
    params = params if params is not None else HPLParameters()
    slots = place_processes(spec, config)
    p = len(slots)
    transport = Transport(spec, slots)
    f_comp = _noise_or_ones(compute_noise, p, "compute_noise")
    f_comm = _noise_or_ones(comm_noise, p, "comm_noise")

    paging = node_slowdowns(spec, slots, n, nb=params.nb, slope=params.paging_slope)
    update_rate = np.empty(p)
    pfact_rate = np.empty(p)
    step_overhead = np.empty(p)
    for r, slot in enumerate(slots):
        kind, m = slot.kind, slot.co_resident
        update_rate[r] = kind.process_rate(n, m) / paging[r]
        pfact_rate[r] = kind.process_rate(n, m) * params.pfact_efficiency / paging[r]
        step_overhead[r] = kind.step_overhead(m)

    co_res = np.array([slot.co_resident for slot in slots], dtype=float)
    edge_weight = np.array(
        [
            1.0 if kind is LinkKind.NETWORK else params.intranode_interference_weight
            for kind in transport.ring_link_kinds()
        ]
    )
    forward_slow = 1.0 + params.forward_interference * (co_res - 1.0) * edge_weight

    nb = params.nb
    nblocks = (n + nb - 1) // nb
    last_block_cols = n - (nblocks - 1) * nb
    ranks = np.arange(p)

    phase = {name: np.zeros(p) for name in PHASE_NAMES}
    wall = 0.0
    for k in range(nblocks):
        j0 = k * nb
        width = min(nb, n - j0)
        m_rows = n - j0
        owner = k % p
        step = np.zeros(p)

        # Panel: Cholesky of the nb x nb diagonal block + triangular solve
        # of the (m - nb) x nb column block below it.
        panel_flops = width**3 / 3.0 + (m_rows - width) * width**2
        t_pfact = panel_flops / pfact_rate[owner] * f_comp[owner]
        phase["pfact"][owner] += t_pfact
        step[owner] += t_pfact

        if p > 1:
            nbytes = float(m_rows) * width * 8.0
            hops = transport.ring_hop_times(nbytes) * forward_slow
            delivery = ring_delivery_times(
                hops, root=owner, pipeline_factor=params.ring_pipeline_factor
            )
            non_owner = ranks != owner
            wait = (t_pfact * params.pfact_wait_factor + delivery) * f_comm
            send = hops[owner] * f_comm[owner]
            phase["bcast"][owner] += send
            phase["bcast"][non_owner] += wait[non_owner]
            step[owner] += send
            step[non_owner] = np.maximum(step[non_owner], wait[non_owner])

        # Symmetric trailing update: each process updates its local
        # trailing columns but only rows at/below each column (half the
        # GEMM volume on average).
        if k + 1 < nblocks:
            trailing = np.arange(k + 1, nblocks)
            counts = np.bincount(trailing % p, minlength=p).astype(float)
            q = counts * nb
            q[(nblocks - 1) % p] -= nb - last_block_cols
        else:
            q = np.zeros(p)
        t_update = (
            np.array([workload.gemm_flops(int(m_rows - width), width, int(qq)) for qq in q])
            / 2.0
        ) / update_rate * f_comp
        t_over = step_overhead * f_comp
        phase["update"] += t_update + t_over
        step += t_update + t_over
        wall += float(np.max(step))

    # triangular solve for one RHS, as for LU
    t_uptrsv = (
        workload.solve_flops(n) / p / update_rate + params.uptrsv_latency_s * p
    ) * f_comp
    phase["uptrsv"] += t_uptrsv
    wall += float(np.max(t_uptrsv))

    return ScheduleResult(
        n=n, params=params, slots=slots, phase_arrays=phase, wall_time_s=wall
    )


def run_cholesky(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    trial: int = 0,
) -> CholeskyResult:
    """Drop-in :func:`~repro.hpl.driver.run_hpl` replacement for Cholesky."""
    compute_noise = comm_noise = None
    if noise is not None and noise.enabled:
        p = config.total_processes
        rng = stream(seed, "cholesky-run", config.key(), n, trial)
        compute_noise = np.exp(rng.normal(0.0, noise.sigma_compute, size=p))
        comm_noise = np.exp(rng.normal(0.0, noise.sigma_comm, size=p))
        if noise.outlier_probability > 0 and rng.random() < noise.outlier_probability:
            compute_noise = compute_noise * noise.outlier_factor
            comm_noise = comm_noise * noise.outlier_factor
    schedule = simulate_cholesky(
        spec, config, n, params=params,
        compute_noise=compute_noise, comm_noise=comm_noise,
    )
    return CholeskyResult(spec_name=spec.name, config=config, n=n, schedule=schedule)


def run_summa(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    trial: int = 0,
) -> SummaResult:
    """Drop-in :func:`~repro.hpl.driver.run_hpl` replacement running SUMMA."""
    compute_noise = comm_noise = None
    if noise is not None and noise.enabled:
        p = config.total_processes
        rng = stream(seed, "summa-run", config.key(), n, trial)
        compute_noise = np.exp(rng.normal(0.0, noise.sigma_compute, size=p))
        comm_noise = np.exp(rng.normal(0.0, noise.sigma_comm, size=p))
        if noise.outlier_probability > 0 and rng.random() < noise.outlier_probability:
            compute_noise = compute_noise * noise.outlier_factor
            comm_noise = comm_noise * noise.outlier_factor
    schedule = simulate_summa(
        spec, config, n, params=params,
        compute_noise=compute_noise, comm_noise=comm_noise,
    )
    return SummaResult(spec_name=spec.name, config=config, n=n, schedule=schedule)
