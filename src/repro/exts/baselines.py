"""Related-work baseline: heterogeneous (speed-weighted) distribution.

The paper positions itself against approaches that *rewrite* the
application to distribute work in proportion to PE speed — Kalinov &
Lastovetsky's heterogeneous block distribution, Beaumont et al.'s 2-D
heterogeneous grids ([7], [1] in the paper).  Its critique: those schemes
(a) require modifying each application and (b) "use all PEs but lack a
viewpoint from which to select the best set of processors".

To make that comparison runnable, this module implements the baseline:
**HBC** — one process per PE, columns dealt to processes in proportion to
their measured speed (a deficit-round-robin over blocks, the 1-D analog
of the heterogeneous block-cyclic distribution).  The same panel-by-panel
walker prices it, with per-step work shares following the weighted
ownership instead of the uniform one.

What the comparison shows (``benchmarks/bench_baseline_hbc.py``): at
small N the paper's method wins outright *because it can leave slow PEs
out* — HBC by construction cannot express "don't use that PE" and the
communication cost of nine ring members sinks it.  At large N the
rewritten application wins by ~15-20%: a true weighted distribution
needs no oversubscription, so it never pays the multiprocessing tax.
That is precisely the trade the paper claims for itself ("our method
does not aim to extract the maximum performance from a heterogeneous
cluster, but rather to offer an easy and simple way to accelerate a wide
range of conventional parallel applications" — Section 1), now with
numbers attached.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.hpl import workload
from repro.hpl.driver import HPLResult, NoiseSpec
from repro.hpl.memory import node_slowdowns
from repro.hpl.schedule import HPLParameters, ScheduleResult, _noise_or_ones
from repro.hpl.timing import PHASE_NAMES
from repro.rng import stream
from repro.simnet.collectives import ring_delivery_times
from repro.simnet.transport import LinkKind, Transport


def weighted_owner_sequence(nblocks: int, weights: Sequence[float]) -> np.ndarray:
    """Deal ``nblocks`` column blocks to processes in proportion to
    ``weights`` (deficit round-robin: each block goes to the process whose
    assigned share lags its weight the most; ties to the lowest rank).

    With equal weights this reduces to plain block-cyclic round-robin
    (property-tested).
    """
    w = np.asarray(weights, dtype=float)
    if nblocks < 0:
        raise SimulationError(f"negative block count {nblocks}")
    if w.ndim != 1 or w.size == 0:
        raise SimulationError("need a non-empty weight vector")
    if np.any(w <= 0) or not np.all(np.isfinite(w)):
        raise SimulationError("weights must be positive and finite")
    share = w / w.sum()
    assigned = np.zeros(w.size)
    owners = np.empty(nblocks, dtype=np.int64)
    for j in range(nblocks):
        deficit = share * (j + 1) - assigned
        owner = int(np.argmax(deficit))
        owners[j] = owner
        assigned[owner] += 1.0
    return owners


def simulate_hbc(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    weights: Optional[Sequence[float]] = None,
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> ScheduleResult:
    """Price an HBC run: same panel schedule, speed-weighted ownership.

    ``weights`` defaults to each process's sustained rate (kind peak x
    efficiency — what a rewritten application would be tuned with).  The
    intended configuration is one process per PE ("use all PEs"), but any
    placement works.
    """
    if n < 1:
        raise SimulationError(f"matrix order must be >= 1, got {n}")
    params = params if params is not None else HPLParameters()
    slots = place_processes(spec, config)
    p = len(slots)
    transport = Transport(spec, slots)
    f_comp = _noise_or_ones(compute_noise, p, "compute_noise")
    f_comm = _noise_or_ones(comm_noise, p, "comm_noise")

    paging = node_slowdowns(spec, slots, n, nb=params.nb, slope=params.paging_slope)
    update_rate = np.empty(p)
    pfact_rate = np.empty(p)
    laswp_rate = np.empty(p)
    step_overhead = np.empty(p)
    for r, slot in enumerate(slots):
        kind, m = slot.kind, slot.co_resident
        update_rate[r] = kind.process_rate(n, m) / paging[r]
        pfact_rate[r] = kind.process_rate(n, m) * params.pfact_efficiency / paging[r]
        laswp_rate[r] = kind.mem_copy_rate() / m / paging[r]
        step_overhead[r] = kind.step_overhead(m)

    if weights is None:
        weights = update_rate
    co_res = np.array([slot.co_resident for slot in slots], dtype=float)
    ring_kinds = transport.ring_link_kinds()
    edge_weight = np.array(
        [
            1.0 if kind is LinkKind.NETWORK else params.intranode_interference_weight
            for kind in ring_kinds
        ]
    )
    forward_slow = 1.0 + params.forward_interference * (co_res - 1.0) * edge_weight
    hop_handoff = np.where(
        np.array([k is LinkKind.SAME_CPU for k in ring_kinds]),
        params.same_cpu_handoff_s * (co_res - 1.0),
        0.0,
    )

    nb = params.nb
    nblocks = (n + nb - 1) // nb
    last_block_cols = n - (nblocks - 1) * nb
    owners = weighted_owner_sequence(nblocks, weights)
    ranks = np.arange(p)

    phase = {name: np.zeros(p) for name in PHASE_NAMES}
    wall = 0.0
    for k in range(nblocks):
        j0 = k * nb
        width = min(nb, n - j0)
        m_rows = n - j0
        owner = int(owners[k])

        if k + 1 < nblocks:
            trailing = owners[k + 1 :]
            counts = np.bincount(trailing, minlength=p).astype(float)
            q = counts * nb
            q[owners[nblocks - 1]] -= nb - last_block_cols
        else:
            q = np.zeros(p)

        t_pfact = (
            workload.pfact_flops(m_rows, width) / pfact_rate[owner] * f_comp[owner]
        )
        t_mxswp = width * params.mxswp_per_column_s * f_comm[owner]
        step = np.zeros(p)
        phase["pfact"][owner] += t_pfact
        phase["mxswp"][owner] += t_mxswp
        step[owner] += t_pfact + t_mxswp

        if p > 1:
            nbytes = workload.panel_bytes(m_rows, width)
            hops = transport.ring_hop_times(nbytes) * forward_slow + hop_handoff
            delivery = ring_delivery_times(
                hops, root=owner, pipeline_factor=params.ring_pipeline_factor
            )
            head_wait = (t_pfact + t_mxswp) * params.pfact_wait_factor
            non_owner = ranks != owner
            bcast_wait = np.where(non_owner, head_wait + delivery, 0.0) * f_comm
            send_cost = hops[owner] * f_comm[owner]
            phase["bcast"][owner] += send_cost
            phase["bcast"][non_owner] += bcast_wait[non_owner]
            step[owner] += send_cost
            step[non_owner] = np.maximum(step[non_owner], bcast_wait[non_owner])

        t_laswp = workload.laswp_bytes(width, q) / laswp_rate * f_comm
        t_update = np.array(
            [workload.update_flops(m_rows, width, int(qq)) for qq in q]
        ) / update_rate * f_comp
        t_over = step_overhead * f_comp
        phase["laswp"] += t_laswp
        phase["update"] += t_update + t_over
        step += t_laswp + t_update + t_over
        wall += float(np.max(step))

    t_uptrsv = (
        workload.solve_flops(n) / p / update_rate + params.uptrsv_latency_s * p
    ) * f_comp
    phase["uptrsv"] += t_uptrsv
    wall += float(np.max(t_uptrsv))

    return ScheduleResult(
        n=n, params=params, slots=slots, phase_arrays=phase, wall_time_s=wall
    )


def run_hbc(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    trial: int = 0,
) -> HPLResult:
    """Driver-shaped wrapper (same signature as :func:`run_hpl`)."""
    compute_noise = comm_noise = None
    if noise is not None and noise.enabled:
        p = config.total_processes
        rng = stream(seed, "hbc-run", config.key(), n, trial)
        compute_noise = np.exp(rng.normal(0.0, noise.sigma_compute, size=p))
        comm_noise = np.exp(rng.normal(0.0, noise.sigma_comm, size=p))
        if noise.outlier_probability > 0 and rng.random() < noise.outlier_probability:
            compute_noise = compute_noise * noise.outlier_factor
            comm_noise = comm_noise * noise.outlier_factor
    schedule = simulate_hbc(
        spec, config, n, params=params,
        compute_noise=compute_noise, comm_noise=comm_noise,
    )
    return HPLResult(spec_name=spec.name, config=config, n=n, schedule=schedule)
