"""Back-compat home of the heuristic searchers.

The heuristics are now registered backends of the Search protocol in
:mod:`repro.core.search.local` (tags ``greedy``, ``hill-climb``,
``anneal``), generalized from "a spec with processes 1..max_procs" to
any :class:`~repro.core.search.space.SearchSpace`.  This module keeps
the original import path working; everything here is a re-export
(``_SearchBase`` kept under its historical name).
"""

from repro.core.search.base import SearchStats
from repro.core.search.local import (
    GreedyGrowth,
    HillClimber,
    LocalSearchBase,
    LocalSearchBase as _SearchBase,
    SimulatedAnnealing,
    full_candidate_space,
)

__all__ = [
    "GreedyGrowth",
    "HillClimber",
    "LocalSearchBase",
    "SearchStats",
    "SimulatedAnnealing",
    "full_candidate_space",
]
