"""Heuristic configuration search (the paper's future-work Section 5).

Exhaustive enumeration is fine for 62 candidates but the space grows as
``prod_i (1 + PE_i * M_max)``-ish with the number of kinds — a ten-kind
cluster has millions of configurations.  This module provides three
classic heuristics over the same estimator interface the exhaustive
optimizer uses, plus bookkeeping (:class:`SearchStats`) so benches can
report evaluations-vs-quality against the exhaustive ground truth:

* :class:`GreedyGrowth` — start from the best single-PE configuration and
  repeatedly take the best *improving move*; stops at a local optimum.
* :class:`HillClimber` — first-improvement local search with restarts.
* :class:`SimulatedAnnealing` — random moves with a cooling temperature;
  escapes the local optima the greedy methods get stuck in.

Moves change one coordinate: add/remove a PE of one kind, or increment/
decrement one kind's processes-per-PE.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig, KindAllocation, enumerate_configs
from repro.cluster.spec import ClusterSpec
from repro.core.optimizer import Estimator
from repro.errors import SearchError
from repro.rng import stream

State = Tuple[Tuple[str, int, int], ...]  # ((kind, pe_count, procs), ...)


@dataclass
class SearchStats:
    """Cost/quality accounting of one heuristic run."""

    evaluations: int = 0
    best_config: Optional[ClusterConfig] = None
    best_estimate: float = math.inf
    trace: List[float] = field(default_factory=list)

    def record(self, config: ClusterConfig, estimate: float) -> None:
        self.evaluations += 1
        if estimate < self.best_estimate:
            self.best_estimate = estimate
            self.best_config = config
        self.trace.append(self.best_estimate)


def full_candidate_space(
    spec: ClusterSpec, max_procs: int = 6
) -> List[ClusterConfig]:
    """Every configuration of a cluster with per-PE processes up to
    ``max_procs`` — the exhaustive ground truth (use with care: exponential
    in the number of kinds)."""
    kinds = list(spec.kind_names)
    return list(
        enumerate_configs(
            kinds,
            pe_ranges={k: range(0, spec.pe_count(k) + 1) for k in kinds},
            proc_ranges={k: range(1, max_procs + 1) for k in kinds},
        )
    )


class _SearchBase:
    """Shared state/move machinery."""

    def __init__(self, spec: ClusterSpec, estimator: Estimator, max_procs: int = 6):
        if max_procs < 1:
            raise SearchError("max_procs must be >= 1")
        self.spec = spec
        self.estimator = estimator
        self.max_procs = max_procs
        self.kinds = list(spec.kind_names)
        self._cache: Dict[Tuple[State, int], float] = {}

    # -- state <-> config -----------------------------------------------------

    def _to_config(self, state: State) -> ClusterConfig:
        return ClusterConfig(
            tuple(KindAllocation(k, pe, m) for k, pe, m in state)
        )

    def _from_config(self, config: ClusterConfig) -> State:
        return tuple(
            (k, config.pe_count(k), config.procs_per_pe(k)) for k in self.kinds
        )

    def _evaluate(self, state: State, n: int, stats: SearchStats) -> float:
        key = (state, n)
        if key not in self._cache:
            config = self._to_config(state)
            value = float(self.estimator(config, n))
            self._cache[key] = value
            stats.record(config, value)
        return self._cache[key]

    # -- neighborhood ------------------------------------------------------------

    def _neighbors(self, state: State) -> List[State]:
        out: List[State] = []
        for index, (kind, pe, m) in enumerate(state):
            available = self.spec.pe_count(kind)
            candidates = set()
            if pe + 1 <= available:
                candidates.add((pe + 1, max(m, 1)))
            if pe - 1 >= 0:
                candidates.add((pe - 1, m if pe - 1 > 0 else 0))
            if pe > 0 and m + 1 <= self.max_procs:
                candidates.add((pe, m + 1))
            if pe > 0 and m - 1 >= 1:
                candidates.add((pe, m - 1))
            for new_pe, new_m in candidates:
                new_state = list(state)
                new_state[index] = (kind, new_pe, new_m if new_pe > 0 else 0)
                candidate = tuple(new_state)
                if sum(pe_ * m_ for _, pe_, m_ in candidate) >= 1:
                    out.append(candidate)
        return out

    def _single_pe_starts(self) -> List[State]:
        """Start states: for every kind, the single-PE configuration and the
        all-PEs-one-process configuration.  Starting from both sides of the
        'one fast PE vs many slow PEs' valley keeps greedy growth from
        being trapped on the wrong side of it."""
        starts = []
        for index, kind in enumerate(self.kinds):
            available = self.spec.pe_count(kind)
            if available == 0:
                continue
            single = [(k, 0, 0) for k in self.kinds]
            single[index] = (kind, 1, 1)
            starts.append(tuple(single))
            if available > 1:
                full = [(k, 0, 0) for k in self.kinds]
                full[index] = (kind, available, 1)
                starts.append(tuple(full))
        return starts


class GreedyGrowth(_SearchBase):
    """Best-improvement growth from the best single-PE configuration."""

    def search(self, n: int, max_steps: int = 200) -> SearchStats:
        stats = SearchStats()
        starts = self._single_pe_starts()
        if not starts:
            raise SearchError("cluster has no PEs")
        current = min(starts, key=lambda s: self._evaluate(s, n, stats))
        for _ in range(max_steps):
            current_value = self._evaluate(current, n, stats)
            moves = self._neighbors(current)
            if not moves:
                break
            best_move = min(moves, key=lambda s: self._evaluate(s, n, stats))
            if self._evaluate(best_move, n, stats) >= current_value:
                break  # local optimum
            current = best_move
        return stats


class HillClimber(_SearchBase):
    """First-improvement local search with random restarts."""

    def search(
        self, n: int, restarts: int = 4, max_steps: int = 200, seed: int = 0
    ) -> SearchStats:
        stats = SearchStats()
        rng = stream(seed, "hill-climber", n)
        for restart in range(max(restarts, 1)):
            current = self._random_state(rng)
            for _ in range(max_steps):
                current_value = self._evaluate(current, n, stats)
                moves = self._neighbors(current)
                rng.shuffle(moves)
                improved = False
                for move in moves:
                    if self._evaluate(move, n, stats) < current_value:
                        current = move
                        improved = True
                        break
                if not improved:
                    break
        return stats

    def _random_state(self, rng: np.random.Generator) -> State:
        while True:
            state = []
            for kind in self.kinds:
                available = self.spec.pe_count(kind)
                pe = int(rng.integers(0, available + 1))
                m = int(rng.integers(1, self.max_procs + 1)) if pe > 0 else 0
                state.append((kind, pe, m))
            if sum(pe * m for _, pe, m in state) >= 1:
                return tuple(state)


class SimulatedAnnealing(_SearchBase):
    """Metropolis search with geometric cooling."""

    def search(
        self,
        n: int,
        steps: int = 400,
        initial_temperature: float = 0.3,
        cooling: float = 0.99,
        seed: int = 0,
    ) -> SearchStats:
        if steps < 1:
            raise SearchError("steps must be >= 1")
        if not (0.0 < cooling <= 1.0):
            raise SearchError("cooling must be in (0, 1]")
        stats = SearchStats()
        rng = stream(seed, "annealing", n)
        starts = self._single_pe_starts()
        if not starts:
            raise SearchError("cluster has no PEs")
        current = min(starts, key=lambda s: self._evaluate(s, n, stats))
        current_value = self._evaluate(current, n, stats)
        temperature = initial_temperature * current_value
        for _ in range(steps):
            moves = self._neighbors(current)
            move = moves[int(rng.integers(0, len(moves)))]
            value = self._evaluate(move, n, stats)
            delta = value - current_value
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
                current, current_value = move, value
            temperature *= cooling
        return stats
