"""Command-line interface: regenerate any of the paper's experiments.

Examples::

    repro describe                      # Table 1 (cluster inventory)
    repro fig1 --mpich 1.2.1            # Fig. 1(a) series
    repro fig2                          # Fig. 2 (NetPIPE curves)
    repro fig3                          # Fig. 3(a)+(b) series
    repro cost --protocol basic         # Table 3 (measurement cost)
    repro verify --protocol ns          # Table 9 (best-config errors)
    repro correlate --protocol basic --n 6400   # Fig. 6/7 ASCII scatter
    repro optimize --protocol nl --n 8000       # ranked configurations
    repro report --protocol basic       # everything for one protocol
    repro models --dir saved/           # model inventory of a saved pipeline

Every command is deterministic in ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.correlation import correlation_data
from repro.analysis.figures import (
    ascii_scatter,
    fig1_series,
    fig2_series,
    fig3a_series,
    fig3b_series,
    series_table,
)
from repro.analysis.report import cost_table, protocol_report, verification_table
from repro.cluster.presets import kishimoto_cluster
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Execution-Time Estimation Model for "
            "Heterogeneous Clusters' (IPDPS 2004)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--mpich",
        default="1.2.5",
        choices=["1.2.1", "1.2.2", "1.2.5"],
        help="intra-node MPI version of the cluster",
    )
    parser.add_argument(
        "--network",
        default="100base-tx",
        choices=["100base-tx", "1000base-sx"],
        help="inter-node network of the cluster",
    )
    parser.add_argument(
        "--cluster",
        default=None,
        metavar="FILE",
        help=(
            "JSON cluster description (see repro.cluster.serialize); "
            "overrides the built-in paper testbed and the --mpich/--network "
            "options"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="cluster inventory (the paper's Table 1)")

    fig1 = sub.add_parser("fig1", help="single-PE multiprocessing Gflops (Fig. 1)")
    fig1.add_argument("--mpich-version", default=None, choices=["1.2.1", "1.2.2"])

    sub.add_parser("fig2", help="intra-node NetPIPE throughput (Fig. 2)")
    sub.add_parser("fig3", help="heterogeneous-cluster Gflops (Fig. 3)")

    for name, help_text in [
        ("cost", "measurement-cost table (Tables 3/6)"),
        ("verify", "best-configuration error table (Tables 4/7/9)"),
        ("report", "full protocol report"),
    ]:
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument(
            "--protocol", default="basic", choices=["basic", "nl", "ns"]
        )

    corr = sub.add_parser("correlate", help="estimate-vs-measurement scatter (Figs 6-15)")
    corr.add_argument("--protocol", default="basic", choices=["basic", "nl", "ns"])
    corr.add_argument("--n", type=int, default=6400)
    corr.add_argument(
        "--raw", action="store_true", help="before adjustment (Figs 6/8/9/12/14)"
    )

    opt = sub.add_parser("optimize", help="rank candidate configurations")
    opt.add_argument("--protocol", default="basic", choices=["basic", "nl", "ns"])
    opt.add_argument("--n", type=int, required=True)
    opt.add_argument("--top", type=int, default=10)

    advise = sub.add_parser(
        "advise", help="sanity-check a measurement plan before running it"
    )
    advise.add_argument("--protocol", default="basic", choices=["basic", "nl", "ns"])
    advise.add_argument(
        "--footprint",
        type=float,
        default=1.0,
        help="application working-set multiple of one HPL matrix (SUMMA: 3)",
    )

    breakdown = sub.add_parser(
        "breakdown", help="phase breakdown of one simulated run (Fig. 4 analog)"
    )
    breakdown.add_argument(
        "--config",
        required=True,
        help="flat configuration tuple, e.g. 1,2,8,1 (P1,M1,P2,M2 order of the cluster's kinds)",
    )
    breakdown.add_argument("--n", type=int, required=True)
    breakdown.add_argument(
        "--per-process", action="store_true", help="also print per-rank rows"
    )

    models = sub.add_parser(
        "models", help="model inventory of a saved pipeline directory"
    )
    models.add_argument(
        "--dir",
        required=True,
        help="directory written by save_pipeline (see repro.core.persistence)",
    )

    export = sub.add_parser(
        "export", help="write every experiment's data as CSV for plotting"
    )
    export.add_argument("--out", required=True, help="output directory")
    export.add_argument(
        "--protocol",
        default="all",
        choices=["all", "basic", "nl", "ns"],
        help="which protocol tables to export (figures always exported)",
    )

    return parser


def _spec(args: argparse.Namespace):
    if getattr(args, "cluster", None):
        from repro.cluster.serialize import load_cluster

        return load_cluster(args.cluster)
    return kishimoto_cluster(mpich=args.mpich, network=args.network)


def _pipeline(args: argparse.Namespace) -> EstimationPipeline:
    return EstimationPipeline(
        _spec(args), PipelineConfig(protocol=args.protocol, seed=args.seed)
    )


#: ``to_dict`` keys that are identity/metadata, not coefficients.
_MODEL_META_KEYS = frozenset(
    ["kind", "p", "mi", "n_range", "p_range", "chisq_ta", "chisq_tc", "composed_from"]
)


def _model_inventory(pipeline: EstimationPipeline, source: str) -> str:
    """The fitted/composed model inventory of a loaded pipeline: one row
    per model with its registry type, identity, provenance, coefficients
    and fingerprint (everything the estimate cache keys on)."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.6g}"
        if isinstance(value, list):
            return "[" + ", ".join(fmt(v) for v in value) + "]"
        return str(value)

    facade = pipeline.models
    models = list(facade.models())
    lines = [
        f"{len(models)} models from {source} "
        f"(backend: {facade.backend.name}, "
        f"store fingerprint {pipeline.store.fingerprint()})"
    ]
    for model in models:
        data = model.to_dict()
        p = data.get("p")
        identity = f"{model.kind_name:<10s} Mi={model.mi}" + (
            f" P={p}" if p is not None else ""
        )
        origin = (
            f"composed<-{data['composed_from']}"
            if model.is_composed
            else "fitted"
        )
        coefficients = "  ".join(
            f"{key}={fmt(value)}"
            for key, value in data.items()
            if key not in _MODEL_META_KEYS
        )
        lines.append(
            f"  {model.model_type:<8s} {identity:<22s} {origin:<20s} "
            f"{model.fingerprint()}  {coefficients}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _dispatch(args: argparse.Namespace) -> None:
    if args.command == "describe":
        print(_spec(args).describe())
    elif args.command == "fig1":
        versions = (
            [args.mpich_version] if args.mpich_version else ["1.2.1", "1.2.2"]
        )
        for version in versions:
            print(f"\nFigure 1 ({version}): HPL Gflops, one Athlon, n processes/CPU")
            print(series_table(fig1_series(version, seed=args.seed), "N"))
    elif args.command == "fig2":
        print("Figure 2: intra-node throughput [Gbit/s] vs block size [KB]")
        print(series_table(fig2_series(), "KB"))
    elif args.command == "fig3":
        spec = _spec(args)
        print("Figure 3(a): load imbalance [Gflops]")
        print(series_table(fig3a_series(seed=args.seed, spec=spec), "N"))
        print("\nFigure 3(b): multiprocessing [Gflops]")
        print(series_table(fig3b_series(seed=args.seed, spec=spec), "N"))
    elif args.command == "cost":
        print(cost_table(_pipeline(args)))
    elif args.command == "verify":
        pipeline = _pipeline(args)
        print(f"Adjustment: {pipeline.adjustment.describe()}\n")
        print(verification_table(pipeline))
    elif args.command == "report":
        print(protocol_report(_pipeline(args)))
    elif args.command == "correlate":
        pipeline = _pipeline(args)
        data = correlation_data(pipeline, args.n)
        adjusted = not args.raw
        state = "adjusted" if adjusted else "raw"
        print(
            f"Correlation ({args.protocol}, N={args.n}, {state}): "
            f"R^2={data.r_squared(adjusted=adjusted):.4f}, "
            f"mean|dev|={data.mean_abs_deviation(adjusted=adjusted):.3f}"
        )
        print(ascii_scatter(data, adjusted=adjusted))
    elif args.command == "optimize":
        pipeline = _pipeline(args)
        outcome = pipeline.optimize(args.n)
        kinds = pipeline.plan.kinds
        print(
            f"Top {args.top} of {len(outcome.ranking)} configurations at "
            f"N={args.n} ({outcome.search_seconds * 1e3:.1f} ms search):"
        )
        for i, entry in enumerate(outcome.top(args.top), 1):
            print(f"{i:3d}. {entry.config.label(kinds):>12s}  {entry.estimate_s:10.1f} s")
    elif args.command == "advise":
        from repro.measure.advisor import advise as run_advisor
        from repro.measure.grids import plan_by_name

        report = run_advisor(
            _spec(args), plan_by_name(args.protocol), footprint=args.footprint
        )
        print(report.render())
    elif args.command == "breakdown":
        from repro.analysis.breakdown import breakdown_report
        from repro.cluster.config import ClusterConfig

        spec = _spec(args)
        values = [int(v) for v in args.config.split(",")]
        config = ClusterConfig.from_tuple(spec.kind_names, values)
        print(
            breakdown_report(
                spec, config, args.n, seed=args.seed, per_process=args.per_process
            )
        )
    elif args.command == "models":
        from repro.core.persistence import load_pipeline

        print(_model_inventory(load_pipeline(args.dir), args.dir))
    elif args.command == "export":
        from repro.analysis.export import export_figures, export_protocol

        spec = _spec(args)
        written = export_figures(args.out, seed=args.seed, spec=spec)
        protocols = (
            ["basic", "nl", "ns"] if args.protocol == "all" else [args.protocol]
        )
        for protocol in protocols:
            pipeline = EstimationPipeline(
                spec, PipelineConfig(protocol=protocol, seed=args.seed)
            )
            written += export_protocol(pipeline, args.out)
        for path in written:
            print(f"wrote {path}")
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
