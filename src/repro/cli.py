"""Command-line interface: regenerate any of the paper's experiments.

Examples::

    repro describe                      # Table 1 (cluster inventory)
    repro workloads                     # registered workload families
    repro fig1 --mpich 1.2.1            # Fig. 1(a) series
    repro fig2                          # Fig. 2 (NetPIPE curves)
    repro fig3                          # Fig. 3(a)+(b) series
    repro campaign --protocol ns --profile      # measurements + PerfReport
    repro cost --protocol basic         # Table 3 (measurement cost)
    repro verify --protocol ns          # Table 9 (best-config errors)
    repro correlate --protocol basic --n 6400   # Fig. 6/7 ASCII scatter
    repro optimize --protocol nl --n 8000       # ranked configurations
    repro pareto --protocol basic --n 5000      # time/cost Pareto frontier
    repro report --protocol basic       # everything for one protocol
    repro models --dir saved/           # model inventory of a saved pipeline
    repro models --dir ledger/ --fingerprints   # ledger <-> artifact fingerprints
    repro calibrate status --dir saved/ --log obs.jsonl   # drift state
    repro calibrate refit --dir saved/ --log obs.jsonl --versions ledger/
    repro calibrate promote --versions ledger/ --dir saved/

Every command is deterministic in ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.correlation import correlation_data
from repro.analysis.figures import (
    ascii_scatter,
    fig1_series,
    fig2_series,
    fig3a_series,
    fig3b_series,
    series_table,
)
from repro.analysis.report import cost_table, protocol_report, verification_table
from repro.cluster.presets import kishimoto_cluster
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Execution-Time Estimation Model for "
            "Heterogeneous Clusters' (IPDPS 2004)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--mpich",
        default="1.2.5",
        choices=["1.2.1", "1.2.2", "1.2.5"],
        help="intra-node MPI version of the cluster",
    )
    parser.add_argument(
        "--network",
        default="100base-tx",
        choices=["100base-tx", "1000base-sx"],
        help="inter-node network of the cluster",
    )
    parser.add_argument(
        "--cluster",
        default=None,
        metavar="FILE",
        help=(
            "JSON cluster description (see repro.cluster.serialize); "
            "overrides the built-in paper testbed and the --mpich/--network "
            "options"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="cluster inventory (the paper's Table 1)")

    workloads = sub.add_parser(
        "workloads", help="registered workload families (tags, phases, grids)"
    )
    workloads.add_argument(
        "--tag", default=None, help="show one workload family (default: all)"
    )

    fig1 = sub.add_parser("fig1", help="single-PE multiprocessing Gflops (Fig. 1)")
    fig1.add_argument("--mpich-version", default=None, choices=["1.2.1", "1.2.2"])

    sub.add_parser("fig2", help="intra-node NetPIPE throughput (Fig. 2)")
    sub.add_parser("fig3", help="heterogeneous-cluster Gflops (Fig. 3)")

    for name, help_text in [
        ("cost", "measurement-cost table (Tables 3/6)"),
        ("verify", "best-configuration error table (Tables 4/7/9)"),
        ("report", "full protocol report"),
    ]:
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument(
            "--protocol", default="basic", choices=["basic", "nl", "ns"]
        )

    campaign = sub.add_parser(
        "campaign", help="run a construction campaign (the measurement step)"
    )
    campaign.add_argument(
        "--protocol", default="basic", choices=["basic", "nl", "ns"]
    )
    campaign.add_argument(
        "--workload", default="hpl",
        help="workload family tag (see `repro workloads`)",
    )
    campaign.add_argument(
        "--workers", type=int, default=1, help="process-pool width for the runs"
    )
    campaign.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the per-stage PerfReport (walker time, batch sizes, "
            "panel-table hits, grid-kernel blocks) after the run"
        ),
    )

    corr = sub.add_parser("correlate", help="estimate-vs-measurement scatter (Figs 6-15)")
    corr.add_argument("--protocol", default="basic", choices=["basic", "nl", "ns"])
    corr.add_argument("--n", type=int, default=6400)
    corr.add_argument(
        "--raw", action="store_true", help="before adjustment (Figs 6/8/9/12/14)"
    )

    opt = sub.add_parser("optimize", help="rank candidate configurations")
    opt.add_argument("--protocol", default="basic", choices=["basic", "nl", "ns"])
    opt.add_argument(
        "--workload", default="hpl",
        help="workload family tag (see `repro workloads`)",
    )
    opt.add_argument("--n", type=int, required=True)
    opt.add_argument("--top", type=int, default=10)
    opt.add_argument(
        "--backend",
        default=None,
        help=(
            "search backend tag (exhaustive, branch-bound, beam, greedy, "
            "hill-climb, anneal; default: the pipeline's configured backend)"
        ),
    )
    opt.add_argument(
        "--budget",
        type=int,
        default=None,
        help="evaluation budget for budget-capable backends (default: unbounded)",
    )
    opt.add_argument(
        "--max-cost",
        type=float,
        default=None,
        help="dollar cap per run (needs a priced cluster; uses budget-frontier)",
    )
    opt.add_argument(
        "--objective",
        default=None,
        help="'time' (default) or 'weighted:ALPHA' time/cost scalarization",
    )
    opt.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the pipeline's PerfReport (cache hit rates, per-backend "
            "search stats, grid-kernel block/fallback counters)"
        ),
    )

    pareto = sub.add_parser(
        "pareto", help="time/cost Pareto frontier over the candidate grid"
    )
    pareto.add_argument("--protocol", default="basic", choices=["basic", "nl", "ns"])
    pareto.add_argument(
        "--workload", default="hpl",
        help="workload family tag (see `repro workloads`)",
    )
    pareto.add_argument("--n", type=int, required=True)
    pareto.add_argument(
        "--budget",
        type=int,
        default=None,
        help="evaluation budget for the frontier search (default: unbounded)",
    )
    pareto.add_argument(
        "--max-cost",
        type=float,
        default=None,
        help="only keep frontier points with dollar cost <= this cap",
    )
    pareto.add_argument(
        "--rates",
        default=None,
        help=(
            "JSON rate card (repro.cost.model format); default: the cluster's "
            "own card, else the paper-era published card"
        ),
    )

    advise = sub.add_parser(
        "advise", help="sanity-check a measurement plan before running it"
    )
    advise.add_argument("--protocol", default="basic", choices=["basic", "nl", "ns"])
    advise.add_argument(
        "--footprint",
        type=float,
        default=1.0,
        help="application working-set multiple of one HPL matrix (SUMMA: 3)",
    )

    breakdown = sub.add_parser(
        "breakdown", help="phase breakdown of one simulated run (Fig. 4 analog)"
    )
    breakdown.add_argument(
        "--config",
        required=True,
        help="flat configuration tuple, e.g. 1,2,8,1 (P1,M1,P2,M2 order of the cluster's kinds)",
    )
    breakdown.add_argument("--n", type=int, required=True)
    breakdown.add_argument(
        "--per-process", action="store_true", help="also print per-rank rows"
    )

    save = sub.add_parser(
        "save", help="run a pipeline and persist it for repro serve/estimate"
    )
    save.add_argument("--protocol", default="basic", choices=["basic", "nl", "ns"])
    save.add_argument(
        "--workload", default="hpl",
        help="workload family tag (see `repro workloads`)",
    )
    save.add_argument("--out", required=True, help="target directory")

    models = sub.add_parser(
        "models", help="model inventory of a saved pipeline directory"
    )
    models.add_argument(
        "--dir",
        required=True,
        help="directory written by save_pipeline (see repro.core.persistence)",
    )
    models.add_argument(
        "--fingerprints",
        action="store_true",
        help=(
            "terse fingerprint listing (accepts a version-ledger root too), "
            "for correlating ledger versions with on-disk artifacts"
        ),
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="online-calibration loop: drift status, refit, promote, rollback",
    )
    calibrate_sub = calibrate.add_subparsers(dest="calibrate_command", required=True)
    cal_status = calibrate_sub.add_parser(
        "status", help="replay an observation log and report drift state"
    )
    cal_refit = calibrate_sub.add_parser(
        "refit", help="build + shadow-score a refit candidate from the log"
    )
    for cmd in (cal_status, cal_refit):
        cmd.add_argument(
            "--dir", required=True, help="served pipeline directory (the incumbent)"
        )
        cmd.add_argument(
            "--log", required=True, help="observation log (JSONL, see ObservationLog)"
        )
        cmd.add_argument(
            "--versions", default=None, help="model-version ledger root"
        )
    cal_refit.add_argument(
        "--holdout", type=float, default=0.25,
        help="fraction of the log tail held out for shadow evaluation",
    )
    cal_promote = calibrate_sub.add_parser(
        "promote", help="activate a ledger version (default: newest candidate)"
    )
    cal_promote.add_argument(
        "--version", default=None, help="version id (e.g. v0002)"
    )
    cal_rollback = calibrate_sub.add_parser(
        "rollback", help="re-promote the previously active version"
    )
    for cmd in (cal_promote, cal_rollback):
        cmd.add_argument(
            "--versions", required=True, help="model-version ledger root"
        )
        cmd.add_argument(
            "--dir", default=None,
            help=(
                "served pipeline directory to re-save the activated version "
                "into (a running `repro serve` hot-reloads it)"
            ),
        )

    estimate = sub.add_parser(
        "estimate", help="estimate one configuration from a saved pipeline"
    )
    estimate.add_argument(
        "--dir", required=True, help="directory written by save_pipeline"
    )
    estimate.add_argument(
        "--config",
        required=True,
        help="flat configuration tuple, e.g. 1,2,8,1 (P1,M1,P2,M2 order)",
    )
    estimate.add_argument(
        "--n",
        type=int,
        required=True,
        action="append",
        help="problem order (repeatable for several sizes)",
    )
    estimate.add_argument(
        "--workload", default=None,
        help=(
            "assert the saved pipeline's workload family tag "
            "(error out instead of estimating with the wrong simulator's "
            "models)"
        ),
    )

    serve = sub.add_parser(
        "serve", help="serve saved pipelines over a JSON-lines TCP socket"
    )
    serve.add_argument(
        "--dir",
        required=True,
        action="append",
        metavar="[NAME=]PATH",
        help=(
            "saved pipeline directory to serve (repeatable); NAME defaults "
            "to the directory's basename"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7453)
    serve.add_argument(
        "--max-pending", type=int, default=256,
        help="pending-queue bound; beyond it requests are shed (Overloaded)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="micro-batch size cap (1 disables batching)",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="coalescing window after the first queued request (0 disables)",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=4096,
        help="per-pipeline LRU estimate-cache bound (0 = unbounded)",
    )
    serve.add_argument(
        "--refresh-interval", type=float, default=0.5,
        help="seconds between hot-reload directory checks (0 disables)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help=(
            "replica processes; 1 = classic single process, 0 = one per "
            "available CPU, N = a fleet of N sharing the port with "
            "zero-copy shared model artifacts"
        ),
    )
    serve.add_argument(
        "--listener", choices=("auto", "reuseport", "router"), default="auto",
        help=(
            "fleet accept sharding: SO_REUSEPORT kernel balancing or a "
            "round-robin front router (auto picks by platform support)"
        ),
    )

    client = sub.add_parser(
        "client", help="query a running `repro serve` (smoke testing)"
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7453)
    client.add_argument(
        "--op",
        required=True,
        choices=[
            "estimate", "optimize", "whatif", "pareto", "models", "stats",
            "reload", "ping", "calibration", "fleet_status",
        ],
    )
    client.add_argument("--pipeline", default=None, help="pipeline name on the server")
    client.add_argument("--config", default=None, help="flat tuple, e.g. 1,2,8,1")
    client.add_argument(
        "--n", type=int, action="append", default=None, help="problem order (repeatable)"
    )
    client.add_argument("--top", type=int, default=10, help="ranking depth (optimize)")
    client.add_argument(
        "--backend", default=None, help="search backend tag (optimize/whatif)"
    )
    client.add_argument(
        "--budget",
        type=int,
        default=None,
        help="evaluation budget (optimize/whatif/pareto)",
    )
    client.add_argument(
        "--max-cost",
        type=float,
        default=None,
        help="dollar cap (optimize/pareto)",
    )
    client.add_argument(
        "--objective",
        default=None,
        help="'time' or 'weighted:ALPHA' scalarization (optimize)",
    )
    client.add_argument(
        "--workload",
        default=None,
        help=(
            "workload family tag asserted on the request "
            "(estimate/optimize/whatif/pareto)"
        ),
    )

    export = sub.add_parser(
        "export", help="write every experiment's data as CSV for plotting"
    )
    export.add_argument("--out", required=True, help="output directory")
    export.add_argument(
        "--protocol",
        default="all",
        choices=["all", "basic", "nl", "ns"],
        help="which protocol tables to export (figures always exported)",
    )

    return parser


def _spec(args: argparse.Namespace):
    if getattr(args, "cluster", None):
        from repro.cluster.serialize import load_cluster

        return load_cluster(args.cluster)
    return kishimoto_cluster(mpich=args.mpich, network=args.network)


def _priced_pipeline(args: argparse.Namespace) -> EstimationPipeline:
    """A pipeline whose cluster carries a rate card: ``--rates FILE`` when
    given, the cluster's own card when priced, else the published
    paper-era card (with a note, so the fallback is never silent)."""
    spec = _spec(args)
    rates = getattr(args, "rates", None)
    if rates is not None:
        import json as _json

        from repro.cost.model import cost_model_from_dict

        with open(rates, "r", encoding="utf-8") as handle:
            data = _json.load(handle)
        spec = spec.with_cost(cost_model_from_dict(data, origin=rates))
    elif spec.cost is None:
        from repro.cost.presets import kishimoto_rate_card

        print(
            f"note: cluster {spec.name!r} has no rate card; using the "
            "published paper-era card (override with --rates FILE)"
        )
        spec = spec.with_cost(kishimoto_rate_card())
    return EstimationPipeline(
        spec,
        PipelineConfig(
            protocol=args.protocol, seed=args.seed,
            workload=getattr(args, "workload", None) or "hpl",
        ),
    )


def _pipeline(args: argparse.Namespace) -> EstimationPipeline:
    return EstimationPipeline(
        _spec(args),
        PipelineConfig(
            protocol=args.protocol, seed=args.seed,
            workload=getattr(args, "workload", None) or "hpl",
        ),
    )


#: ``to_dict`` keys that are identity/metadata, not coefficients.
_MODEL_META_KEYS = frozenset(
    ["kind", "p", "mi", "n_range", "p_range", "chisq_ta", "chisq_tc", "composed_from"]
)


def _model_inventory(pipeline: EstimationPipeline, source: str) -> str:
    """The fitted/composed model inventory of a loaded pipeline: one row
    per model with its registry type, identity, provenance, coefficients
    and fingerprint (everything the estimate cache keys on)."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.6g}"
        if isinstance(value, list):
            return "[" + ", ".join(fmt(v) for v in value) + "]"
        return str(value)

    facade = pipeline.models
    models = list(facade.models())
    lines = [
        f"{len(models)} models from {source} "
        f"(backend: {facade.backend.name}, "
        f"store fingerprint {pipeline.store.fingerprint()})"
    ]
    for model in models:
        data = model.to_dict()
        p = data.get("p")
        identity = f"{model.kind_name:<10s} Mi={model.mi}" + (
            f" P={p}" if p is not None else ""
        )
        origin = (
            f"composed<-{data['composed_from']}"
            if model.is_composed
            else "fitted"
        )
        coefficients = "  ".join(
            f"{key}={fmt(value)}"
            for key, value in data.items()
            if key not in _MODEL_META_KEYS
        )
        lines.append(
            f"  {model.model_type:<8s} {identity:<22s} {origin:<20s} "
            f"{model.fingerprint()}  {coefficients}"
        )
    return "\n".join(lines)


def _fingerprint_listing(directory: str) -> str:
    """``repro models --fingerprints``: terse fingerprint-per-line output.

    Accepts either a version-ledger root (rows straight from the ledger
    MANIFEST) or a single saved-pipeline directory (its estimate-cache,
    store and per-model fingerprints).
    """
    from pathlib import Path

    from repro.calibrate import ModelVersions
    from repro.core.persistence import load_pipeline

    if (Path(directory) / "MANIFEST.json").exists():
        versions = ModelVersions(directory)
        lines = [f"ledger {directory} (active: {versions.active_id or '-'})"]
        for info in versions.history():
            marker = "*" if info.version_id == versions.active_id else " "
            lines.append(
                f" {marker} {info.version_id}  {info.fingerprint}  "
                f"[{info.status}]  parent={info.parent_fingerprint or '-'}  "
                f"protocol={info.protocol}"
            )
        return "\n".join(lines)
    pipeline = load_pipeline(directory)
    lines = [
        f"pipeline {directory}",
        f"  estimate-cache fingerprint: {pipeline.estimate_cache.fingerprint}",
        f"  store fingerprint:          {pipeline.store.fingerprint()}",
    ]
    for model in pipeline.models.models():
        p = model.to_dict().get("p")
        identity = f"{model.kind_name} Mi={model.mi}" + (
            f" P={p}" if p is not None else ""
        )
        lines.append(f"  {model.fingerprint()}  {model.model_type:<8s} {identity}")
    return "\n".join(lines)


def _run_calibrate(args: argparse.Namespace) -> None:
    """``repro calibrate status|refit|promote|rollback``."""
    import json

    from repro.calibrate import Calibrator, ModelVersions, ObservationLog, Recalibrator
    from repro.core.persistence import load_pipeline, save_pipeline

    command = args.calibrate_command
    if command in ("status", "refit"):
        pipeline = load_pipeline(args.dir)
        versions = ModelVersions(args.versions) if args.versions else None
        with ObservationLog(args.log) as log:
            calibrator = Calibrator(
                name="cli",
                pipeline_provider=lambda: pipeline,
                log=log,
                versions=versions,
                recalibrator=Recalibrator(
                    holdout_fraction=getattr(args, "holdout", 0.25)
                ),
            )
            calibrator.replay_log()
            if command == "status":
                print(json.dumps(calibrator.status(), indent=1))
                print()
                print(calibrator.detector.describe())
                return
            info, shadow = calibrator.refit()
            print(shadow.describe())
            print(
                f"candidate {info.version_id} recorded "
                f"(fingerprint {info.fingerprint}, "
                f"parent {info.parent_fingerprint}) in {versions.root}"
            )
        return

    versions = ModelVersions(args.versions)
    if command == "promote":
        version_id = args.version
        if version_id is None:
            candidates = [v for v in versions.history() if v.status == "candidate"]
            if not candidates:
                raise ReproError("no candidate version to promote")
            version_id = candidates[-1].version_id
        info = versions.promote(version_id)
        verb = "promoted"
    else:
        info = versions.rollback()
        verb = "rolled back to"
    print(f"{verb} {info.version_id} (fingerprint {info.fingerprint})")
    if args.dir:
        pipeline = versions.load_pipeline(info.version_id)
        save_pipeline(
            pipeline,
            args.dir,
            include_evaluation=pipeline.graph.has("evaluation"),
        )
        print(f"re-saved active version into {args.dir} (hot-reload target)")


def _parse_dir_specs(specs) -> dict:
    """``NAME=PATH`` (NAME defaulting to the basename) -> ordered dict."""
    from pathlib import Path

    out = {}
    for spec_text in specs:
        name, _, path = spec_text.rpartition("=")
        if not name:
            name = Path(path).name or "pipeline"
        out[name] = path
    return out


def _run_fleet(args: argparse.Namespace) -> None:
    """``repro serve --workers N``: a sharded multi-process fleet."""
    import signal
    import threading

    from repro.serve import FleetConfig, FleetSupervisor

    config = FleetConfig(
        workers=args.workers,
        host=args.host,
        port=args.port,
        listener=args.listener,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1e3,
        cache_capacity=args.cache_capacity if args.cache_capacity > 0 else None,
    )
    supervisor = FleetSupervisor(_parse_dir_specs(args.dir), config)
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    with supervisor:
        print(
            f"fleet of {supervisor.workers} replicas serving "
            f"{len(supervisor.pipelines)} pipeline(s) on "
            f"{supervisor.host}:{supervisor.port} "
            f"(listener={supervisor.listener}); Ctrl-C to stop"
        )
        for name, segment in sorted(supervisor._segments.items()):
            print(
                f"  shared {name!r}: {segment.size} bytes, "
                f"fingerprint {segment.meta.get('fingerprint')}"
            )
        stop.wait()
        status = supervisor.status()
        totals = status["totals"]
        print(
            f"\nfleet served {totals['requests']} requests "
            f"({totals['shed']} shed, {totals['errors']} errors) "
            f"across {len(status['workers'])} replicas; "
            f"restarts {status['restarts']}"
        )


def _run_server(args: argparse.Namespace) -> None:
    """``repro serve``: load every --dir, serve until interrupted."""
    import asyncio
    from pathlib import Path

    from repro.serve import EstimationServer, ModelRegistry

    if args.workers != 1:
        _run_fleet(args)
        return

    registry = ModelRegistry(
        cache_capacity=args.cache_capacity if args.cache_capacity > 0 else None
    )
    for spec_text in args.dir:
        name, _, path = spec_text.rpartition("=")
        if not name:
            name = Path(path).name or "pipeline"
        entry = registry.add(name, path)
        print(
            f"loaded {name!r} from {path} "
            f"(protocol {entry.pipeline.plan.name}, "
            f"workload {entry.workload}, "
            f"fingerprint {entry.fingerprint})"
        )

    async def run() -> None:
        server = EstimationServer(
            registry,
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            max_batch=args.max_batch,
            batch_window_s=args.batch_window_ms / 1e3,
            refresh_interval_s=args.refresh_interval or None,
        )
        host, port = await server.start()
        print(
            f"serving {len(registry)} pipeline(s) on {host}:{port} "
            f"(max_batch={args.max_batch}, window={args.batch_window_ms}ms, "
            f"max_pending={args.max_pending}); Ctrl-C to stop"
        )
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()
            print("\n" + server.metrics.describe())

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass


def _run_client(args: argparse.Namespace) -> None:
    """``repro client``: one request against a running server."""
    import json

    from repro.serve import ServeClient

    params = {}
    if args.pipeline is not None:
        params["pipeline"] = args.pipeline
    if args.config is not None:
        params["config"] = [int(v) for v in args.config.split(",")]
    if args.n:
        params["ns"] = list(args.n)
    if args.op == "optimize":
        params["top"] = args.top
        if args.objective is not None:
            params["objective"] = args.objective
    if args.op in ("optimize", "whatif"):
        if args.backend is not None:
            params["backend"] = args.backend
    if args.op in ("optimize", "whatif", "pareto"):
        if args.budget is not None:
            params["budget"] = args.budget
    if args.op in ("optimize", "pareto"):
        if args.max_cost is not None:
            params["max_cost"] = args.max_cost
    if args.op in ("estimate", "optimize", "whatif", "pareto"):
        if args.workload is not None:
            params["workload"] = args.workload
    try:
        client = ServeClient(args.host, args.port)
    except OSError as exc:
        raise ReproError(
            f"cannot reach server at {args.host}:{args.port} ({exc})"
        ) from exc
    with client:
        reply = client.request(args.op, **params)
    print(json.dumps(reply, indent=1))
    if not reply.get("ok"):
        error = reply.get("error") or {}
        raise ReproError(
            f"{error.get('type', 'Internal')}: {error.get('message', 'request failed')}"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _dispatch(args: argparse.Namespace) -> None:
    if args.command == "describe":
        print(_spec(args).describe())
    elif args.command == "workloads":
        from repro.workloads import create_workload, iter_workloads

        selected = (
            [(args.tag, create_workload(args.tag))]
            if args.tag is not None
            else list(iter_workloads())
        )
        for tag, workload in selected:
            info = workload.describe()
            sizes = info["construction_sizes"]
            eval_sizes = info["evaluation_sizes"]
            print(f"{tag}: {info['display']}")
            print(
                "  phases: "
                + ", ".join(
                    f"{name}{'*' if name in info['comm_phases'] else ''}"
                    for name in info["phases"]
                )
                + "  (* = communication)"
            )
            print(
                f"  construction grid: {info['construction_configs']} configs x "
                f"{len(sizes)} sizes (N {sizes[0]}..{sizes[-1]})"
            )
            print(
                f"  evaluation grid:   {info['evaluation_configs']} configs x "
                f"{len(eval_sizes)} sizes (N {eval_sizes[0]}..{eval_sizes[-1]})"
            )
    elif args.command == "fig1":
        versions = (
            [args.mpich_version] if args.mpich_version else ["1.2.1", "1.2.2"]
        )
        for version in versions:
            print(f"\nFigure 1 ({version}): HPL Gflops, one Athlon, n processes/CPU")
            print(series_table(fig1_series(version, seed=args.seed), "N"))
    elif args.command == "fig2":
        print("Figure 2: intra-node throughput [Gbit/s] vs block size [KB]")
        print(series_table(fig2_series(), "KB"))
    elif args.command == "fig3":
        spec = _spec(args)
        print("Figure 3(a): load imbalance [Gflops]")
        print(series_table(fig3a_series(seed=args.seed, spec=spec), "N"))
        print("\nFigure 3(b): multiprocessing [Gflops]")
        print(series_table(fig3b_series(seed=args.seed, spec=spec), "N"))
    elif args.command == "campaign":
        pipeline = EstimationPipeline(
            _spec(args),
            PipelineConfig(
                protocol=args.protocol, seed=args.seed, workers=args.workers
            ),
        )
        result = pipeline.campaign
        print(
            f"{result.plan_name} campaign: {len(result.dataset)} measurements, "
            f"simulated cost {result.total_cost_s:.1f} s"
        )
        if args.profile:
            print()
            print(pipeline.perf.render())
    elif args.command == "cost":
        print(cost_table(_pipeline(args)))
    elif args.command == "verify":
        pipeline = _pipeline(args)
        print(f"Adjustment: {pipeline.adjustment.describe()}\n")
        print(verification_table(pipeline))
    elif args.command == "report":
        print(protocol_report(_pipeline(args)))
    elif args.command == "correlate":
        pipeline = _pipeline(args)
        data = correlation_data(pipeline, args.n)
        adjusted = not args.raw
        state = "adjusted" if adjusted else "raw"
        print(
            f"Correlation ({args.protocol}, N={args.n}, {state}): "
            f"R^2={data.r_squared(adjusted=adjusted):.4f}, "
            f"mean|dev|={data.mean_abs_deviation(adjusted=adjusted):.3f}"
        )
        print(ascii_scatter(data, adjusted=adjusted))
    elif args.command == "optimize":
        pipeline = _pipeline(args)
        alpha = None
        if args.objective is not None:
            from repro.cost.pareto import parse_objective

            alpha = parse_objective(args.objective)
        if (args.max_cost is not None or alpha is not None) and (
            pipeline.cost_model is None
        ):
            pipeline = _priced_pipeline(args)
        outcome = pipeline.optimize(
            args.n,
            backend=args.backend,
            budget=args.budget,
            max_cost=args.max_cost,
            alpha=alpha,
        )
        kinds = pipeline.plan.kinds
        print(
            f"Top {args.top} of {len(outcome.ranking)} configurations at "
            f"N={args.n} ({outcome.search_seconds * 1e3:.1f} ms search):"
        )
        for i, entry in enumerate(outcome.top(args.top), 1):
            print(f"{i:3d}. {entry.config.label(kinds):>12s}  {entry.estimate_s:10.1f} s")
        stats = outcome.stats
        if stats is not None:
            detail = f"search: {stats.backend}, {stats.evaluations} evaluations"
            if stats.pruned_candidates:
                detail += (
                    f", pruned {stats.pruned_candidates} candidates "
                    f"in {stats.pruned_subtrees} subtrees"
                )
            if stats.budget is not None:
                detail += f", budget {stats.budget}"
                detail += " (exhausted)" if stats.exhausted else " (not exhausted)"
            if not outcome.complete:
                detail += " [partial ranking]"
            print(detail)
            if stats.stuck:
                print(
                    "warning: search stopped structurally stuck at a local "
                    "optimum without covering the space; treat the winner "
                    "as a lower-confidence suggestion"
                )
        if args.profile:
            print()
            print(pipeline.perf.render())
    elif args.command == "pareto":
        pipeline = _pipeline(args)
        if args.rates is not None or pipeline.cost_model is None:
            pipeline = _priced_pipeline(args)
        outcome = pipeline.pareto(args.n, budget=args.budget, max_cost=args.max_cost)
        kinds = pipeline.plan.kinds
        cap = f", cost <= ${args.max_cost:g}" if args.max_cost is not None else ""
        print(
            f"Pareto frontier at N={args.n}{cap}: {len(outcome.points)} points "
            f"({outcome.search_seconds * 1e3:.1f} ms search)"
        )
        print(f"{'':>5s}{'config':>12s}  {'time [s]':>12s}  {'cost [$]':>12s}  "
              f"{'energy [Wh]':>12s}")
        for i, point in enumerate(outcome.points, 1):
            print(
                f"{i:3d}. {point.config.label(kinds):>12s}  "
                f"{point.time_s:12.2f}  {point.dollars:12.6f}  "
                f"{point.energy_wh:12.4f}"
            )
        stats = outcome.stats
        if stats is not None:
            detail = f"search: {stats.backend}, {stats.evaluations} evaluations"
            if stats.pruned_candidates:
                detail += (
                    f", pruned {stats.pruned_candidates} candidates "
                    f"in {stats.pruned_subtrees} subtrees"
                )
            if not outcome.complete:
                detail += " [budget-exhausted: frontier covers visited candidates only]"
            print(detail)
    elif args.command == "advise":
        from repro.measure.advisor import advise as run_advisor
        from repro.measure.grids import plan_by_name

        report = run_advisor(
            _spec(args), plan_by_name(args.protocol), footprint=args.footprint
        )
        print(report.render())
    elif args.command == "breakdown":
        from repro.analysis.breakdown import breakdown_report
        from repro.cluster.config import ClusterConfig

        spec = _spec(args)
        values = [int(v) for v in args.config.split(",")]
        config = ClusterConfig.from_tuple(spec.kind_names, values)
        print(
            breakdown_report(
                spec, config, args.n, seed=args.seed, per_process=args.per_process
            )
        )
    elif args.command == "save":
        from repro.core.persistence import save_pipeline

        out = save_pipeline(_pipeline(args), args.out)
        print(f"saved {args.protocol} pipeline (seed {args.seed}) to {out}")
    elif args.command == "models":
        from repro.core.persistence import load_pipeline

        if args.fingerprints:
            print(_fingerprint_listing(args.dir))
        else:
            print(_model_inventory(load_pipeline(args.dir), args.dir))
    elif args.command == "estimate":
        from repro.cluster.config import ClusterConfig
        from repro.core.persistence import load_pipeline

        pipeline = load_pipeline(args.dir)
        if args.workload is not None and pipeline.config.workload != args.workload:
            raise ReproError(
                f"pipeline in {args.dir} serves workload "
                f"{pipeline.config.workload!r}, not {args.workload!r}"
            )
        values = [int(v) for v in args.config.split(",")]
        config = ClusterConfig.from_tuple(pipeline.plan.kinds, values)
        config.validate_against(pipeline.spec)
        totals = pipeline.estimate_totals(config, args.n)
        for n, total in zip(args.n, totals):
            rendered = f"{total:.6g} s" if total < float("inf") else "unestimable"
            print(f"{config.label(pipeline.plan.kinds):>12s}  N={n:<6d} {rendered}")
    elif args.command == "calibrate":
        _run_calibrate(args)
    elif args.command == "serve":
        _run_server(args)
    elif args.command == "client":
        _run_client(args)
    elif args.command == "export":
        from repro.analysis.export import export_figures, export_protocol

        spec = _spec(args)
        written = export_figures(args.out, seed=args.seed, spec=spec)
        protocols = (
            ["basic", "nl", "ns"] if args.protocol == "all" else [args.protocol]
        )
        for protocol in protocols:
            pipeline = EstimationPipeline(
                spec, PipelineConfig(protocol=protocol, seed=args.seed)
            )
            written += export_protocol(pipeline, args.out)
        for path in written:
            print(f"wrote {path}")
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
