"""Campaign advisor: will this measurement plan produce a trustworthy model?

The paper's NS protocol is a cautionary tale that is entirely *predictable
before spending any cluster time*: every one of its failure conditions is
visible in the plan itself.  The advisor inspects a
:class:`~repro.measure.grids.CampaignPlan` against a cluster and reports:

* **extrapolation risk** — evaluation sizes far above the construction
  range (the NS trap: deciding about N = 9600 from fits on N <= 1600);
* **interpolation-only fits** — exactly 4 sizes per N-T model (noise flows
  straight into the coefficients; the Basic grid oversamples for a reason);
* **un-measurable P-T models** — kinds whose grid offers fewer than 3 PE
  counts (they will be composed, which is weaker);
* **paging construction runs** — runs whose predicted memory footprint
  overflows a node (they would poison the fits; see the memory guard);
* a **cost estimate** for the whole campaign from the kinds' peak rates —
  a deliberately crude ``work / aggregate-peak`` bound (no simulator
  involved, because on a real cluster you could not simulate either).

``severity`` is ``"fatal"`` (the model will be wrong), ``"warning"``
(fragile), or ``"info"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.spec import ClusterSpec
from repro.core.memory_guard import MemoryGuard
from repro.hpl.workload import hpl_benchmark_flops
from repro.measure.grids import CampaignPlan
from repro.units import GFLOPS, pretty_seconds

#: Construction must reach at least this fraction of the largest evaluation
#: size.  The paper's data calibrates the boundary: NL (6400/9600 = 0.67)
#: extrapolated fine; NS (1600/9600 = 0.17) collapsed.
SAFE_EXTRAPOLATION = 0.5


@dataclass(frozen=True)
class Finding:
    severity: str  # "fatal" | "warning" | "info"
    code: str
    message: str


@dataclass
class AdvisorReport:
    plan_name: str
    findings: List[Finding] = field(default_factory=list)
    estimated_cost_s: float = 0.0

    @property
    def fatal(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "fatal"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.fatal

    def render(self) -> str:
        lines = [
            f"Campaign advisor: plan {self.plan_name!r} — "
            f"estimated measurement cost ~{pretty_seconds(self.estimated_cost_s)} "
            f"(crude peak-rate bound)"
        ]
        if not self.findings:
            lines.append("  no findings: plan looks sound")
        for finding in self.findings:
            lines.append(f"  [{finding.severity.upper():7s}] {finding.code}: {finding.message}")
        return "\n".join(lines)


def advise(
    spec: ClusterSpec,
    plan: CampaignPlan,
    footprint: float = 1.0,
    work_flops=hpl_benchmark_flops,
) -> AdvisorReport:
    """Analyze a plan before running it.

    ``footprint`` is the application's working-set multiple of one HPL
    matrix (SUMMA: 3); ``work_flops`` its work function (for the cost
    bound).
    """
    report = AdvisorReport(plan_name=plan.name)

    # -- extrapolation risk ---------------------------------------------------
    max_construction = max(plan.construction_sizes)
    max_evaluation = max(plan.evaluation_sizes) if plan.evaluation_sizes else 0
    if max_evaluation:
        ratio = max_construction / max_evaluation
        if ratio < SAFE_EXTRAPOLATION:
            report.findings.append(
                Finding(
                    "fatal",
                    "extrapolation",
                    f"construction tops out at N={max_construction} but the plan "
                    f"decides about N={max_evaluation} ({ratio:.0%} coverage; "
                    f"below {SAFE_EXTRAPOLATION:.0%} is the paper's NS failure regime)",
                )
            )
        elif ratio < 1.0:
            report.findings.append(
                Finding(
                    "info",
                    "extrapolation",
                    f"evaluation extrapolates {max_construction} -> {max_evaluation} "
                    f"({ratio:.0%} coverage; the paper's Basic/NL models handled this)",
                )
            )

    # -- interpolation-only fits --------------------------------------------------
    n_sizes = len(set(plan.construction_sizes))
    if n_sizes < 4:
        report.findings.append(
            Finding(
                "fatal",
                "too-few-sizes",
                f"only {n_sizes} construction sizes; N-T models need >= 4",
            )
        )
    elif n_sizes == 4:
        report.findings.append(
            Finding(
                "warning",
                "interpolation-fit",
                "exactly 4 construction sizes: the Ta fit is an interpolation "
                "and measurement noise passes straight into the coefficients "
                "(consider 6+ sizes, or repeated trials)",
            )
        )

    # -- P-T measurability per kind -------------------------------------------------
    pe_counts: Dict[str, set] = {}
    for config in plan.construction_configs:
        for alloc in config.active:
            pe_counts.setdefault(alloc.kind_name, set()).add(alloc.pe_count)
    for kind in plan.kinds:
        counts = pe_counts.get(kind, set())
        if not counts:
            report.findings.append(
                Finding("warning", "unmeasured-kind", f"kind {kind!r} never measured")
            )
        elif len(counts) < 3:
            available = spec.pe_count(kind) if kind in spec.kind_names else 0
            reason = (
                "the cluster has too few PEs — its P-T models will be composed"
                if available < 3
                else "add more PE counts to the grid for a measured P-T model"
            )
            report.findings.append(
                Finding(
                    "info" if available < 3 else "warning",
                    "composed-pt",
                    f"kind {kind!r} measured at PE counts {sorted(counts)} "
                    f"(< 3): {reason}",
                )
            )

    # -- paging construction runs -----------------------------------------------------
    guard = MemoryGuard(spec, footprint=footprint)
    paging = [
        (config.label(plan.kinds), n)
        for n, config in plan.construction_runs()
        if not guard.fits(config, n)
    ]
    if paging:
        sample = ", ".join(f"{label}@{n}" for label, n in paging[:4])
        report.findings.append(
            Finding(
                "fatal",
                "paging-runs",
                f"{len(paging)} construction runs exceed node memory "
                f"(e.g. {sample}); they would poison the fits — shrink the "
                "grid or enable the memory guard",
            )
        )

    # -- crude cost bound ------------------------------------------------------------------
    total = 0.0
    for n, config in plan.construction_runs():
        aggregate = sum(
            spec.kind(a.kind_name).peak_gflops * GFLOPS * a.pe_count
            for a in config.active
            if a.kind_name in spec.kind_names
        )
        if aggregate > 0:
            total += work_flops(n) / aggregate
    report.estimated_cost_s = total
    return report
