"""Datasets of measurement records: filtering, grouping, persistence.

A :class:`Dataset` is an ordered collection of
:class:`~repro.measure.record.MeasurementRecord` with the query surface the
model-construction layer needs (records of one kind/configuration family,
the distinct ``N`` or ``P`` values measured) plus JSON and CSV round-trips
so campaigns can be cached and shared.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import MeasurementError
from repro.hpl.timing import PHASE_NAMES
from repro.measure.record import MeasurementRecord

_FORMAT_VERSION = 1


class Dataset:
    """An ordered, key-unique collection of measurements."""

    def __init__(self, records: Iterable[MeasurementRecord] = ()):
        self._records: List[MeasurementRecord] = []
        self._keys: set = set()
        for record in records:
            self.add(record)

    # -- mutation ------------------------------------------------------------

    def add(self, record: MeasurementRecord) -> None:
        key = record.key()
        if key in self._keys:
            raise MeasurementError(f"duplicate measurement {key}")
        self._keys.add(key)
        self._records.append(record)

    def merge(self, other: "Dataset") -> "Dataset":
        """New dataset with the records of both (keys must not collide)."""
        merged = Dataset(self._records)
        for record in other:
            merged.add(record)
        return merged

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[MeasurementRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> MeasurementRecord:
        return self._records[index]

    # -- queries --------------------------------------------------------------------

    def filter(self, predicate: Callable[[MeasurementRecord], bool]) -> "Dataset":
        return Dataset(r for r in self._records if predicate(r))

    def for_config(self, config_tuple: Sequence[int]) -> "Dataset":
        wanted = tuple(config_tuple)
        return self.filter(lambda r: r.config_tuple == wanted)

    def for_n(self, n: int) -> "Dataset":
        return self.filter(lambda r: r.n == n)

    def single_kind(self, kind_name: str) -> "Dataset":
        """Homogeneous runs of one kind (the model-construction runs)."""
        return self.filter(
            lambda r: r.is_single_kind and r.has_kind(kind_name)
        )

    def sizes(self) -> List[int]:
        return sorted({r.n for r in self._records})

    def process_counts(self) -> List[int]:
        return sorted({r.total_processes for r in self._records})

    def config_tuples(self) -> List[Tuple[int, ...]]:
        out: List[Tuple[int, ...]] = []
        seen = set()
        for r in self._records:
            if r.config_tuple not in seen:
                seen.add(r.config_tuple)
                out.append(r.config_tuple)
        return out

    def lookup(
        self, config_tuple: Sequence[int], n: int, trial: int = 0
    ) -> MeasurementRecord:
        wanted = (tuple(config_tuple), n, trial)
        for r in self._records:
            if r.key() == wanted:
                return r
        raise MeasurementError(f"no measurement for {wanted}")

    def total_wall_time(self) -> float:
        """Total simulated measurement cost in seconds."""
        return sum(r.wall_time_s for r in self._records)

    # -- persistence --------------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "format": _FORMAT_VERSION,
            "records": [r.to_dict() for r in self._records],
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "Dataset":
        payload = json.loads(text)
        if payload.get("format") != _FORMAT_VERSION:
            raise MeasurementError(
                f"unsupported dataset format {payload.get('format')!r}"
            )
        return cls(MeasurementRecord.from_dict(d) for d in payload["records"])

    def save(self, path: Path | str) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Path | str) -> "Dataset":
        return cls.from_json(Path(path).read_text())

    def _phase_columns(self) -> List[str]:
        """Phase column names: the first record's decomposition (HPL's
        historical columns for HPL datasets; a dataset never mixes
        workload families)."""
        if not self._records:
            return list(PHASE_NAMES)
        first = self._records[0]
        if not first.per_kind:
            return list(PHASE_NAMES)
        return list(first.per_kind[0].phases.as_dict())

    def to_csv(self) -> str:
        """Flat per-kind CSV (one row per record per measured kind)."""
        phase_columns = self._phase_columns()
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(
            ["config", "n", "p", "wall_s", "gflops", "kind", "pe_count", "procs_per_pe", "ta", "tc"]
            + phase_columns
        )
        for r in self._records:
            for km in r.per_kind:
                writer.writerow(
                    [
                        r.label,
                        r.n,
                        r.total_processes,
                        f"{r.wall_time_s:.6f}",
                        f"{r.gflops:.4f}",
                        km.kind_name,
                        km.pe_count,
                        km.procs_per_pe,
                        f"{km.ta:.6f}",
                        f"{km.tc:.6f}",
                    ]
                    + [f"{getattr(km.phases, p):.6f}" for p in phase_columns]
                )
        return out.getvalue()

    def summary(self) -> str:
        if not self._records:
            return "Dataset(empty)"
        return (
            f"Dataset({len(self._records)} records, "
            f"N in {self.sizes()[0]}..{self.sizes()[-1]}, "
            f"{len(self.config_tuples())} configurations, "
            f"total {self.total_wall_time():.1f} simulated seconds)"
        )
