"""Repeated measurements and robust aggregation.

Real benchmarking repeats each timed run and aggregates — usually taking
the **minimum** (the least-disturbed observation of a deterministic
computation) or the **median** (robust to both directions).  The paper
times each configuration once; on a shared or flaky machine that is
exactly how an outlier (a cron job, an NFS stall) ends up inside a
least-squares fit.

:func:`measure_with_trials` runs ``trials`` independent simulated
measurements of one configuration and folds them into a single
:class:`~repro.measure.record.MeasurementRecord`;
:func:`run_campaign_with_trials` applies that to a whole plan, accounting
the *full* cost of all trials (robustness is not free).
"""

from __future__ import annotations

from collections import defaultdict
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.errors import MeasurementError
from repro.hpl.driver import NoiseSpec, run_hpl
from repro.hpl.schedule import HPLParameters
from repro.measure.campaign import (
    BATCH_RUNNERS,
    BatchRunner,
    CampaignResult,
    Runner,
    _charged_kind,
)
from repro.measure.dataset import Dataset
from repro.measure.grids import CampaignPlan, group_runs_by_config
from repro.measure.record import KindMeasurement, MeasurementRecord
from repro.perf.parallel import ParallelRunner

AGGREGATORS: Dict[str, Callable[[np.ndarray], float]] = {
    "min": lambda values: float(np.min(values)),
    "median": lambda values: float(np.median(values)),
    "mean": lambda values: float(np.mean(values)),
}


def aggregate_records(
    records: Sequence[MeasurementRecord], how: str = "median"
) -> MeasurementRecord:
    """Fold repeated trials of one (configuration, N) into one record.

    The chosen statistic is applied to the wall time and, field-wise, to
    every per-kind phase (a field-wise median is not any single trial, but
    it is the right robust location estimate for fitting).
    """
    if not records:
        raise MeasurementError("no trials to aggregate")
    if how not in AGGREGATORS:
        raise MeasurementError(
            f"unknown aggregator {how!r}; have {sorted(AGGREGATORS)}"
        )
    first = records[0]
    for record in records[1:]:
        if (record.config_tuple, record.n) != (first.config_tuple, first.n):
            raise MeasurementError(
                "trials must share configuration and size: "
                f"{record.key()} vs {first.key()}"
            )
    agg = AGGREGATORS[how]
    wall = agg(np.array([r.wall_time_s for r in records]))
    per_kind: List[KindMeasurement] = []
    for km in first.per_kind:
        # The record's own phase vector names the fields, so any workload
        # family's decomposition aggregates the same way.
        phase_cls = type(km.phases)
        phases = {}
        for name in km.phases.as_dict():
            phases[name] = agg(
                np.array(
                    [getattr(r.kind(km.kind_name).phases, name) for r in records]
                )
            )
        per_kind.append(
            KindMeasurement(
                kind_name=km.kind_name,
                pe_count=km.pe_count,
                procs_per_pe=km.procs_per_pe,
                phases=phase_cls.from_dict(phases),
            )
        )
    gflops = float(np.median([r.gflops for r in records]))
    return MeasurementRecord(
        kinds=first.kinds,
        config_tuple=first.config_tuple,
        n=first.n,
        total_processes=first.total_processes,
        wall_time_s=wall,
        gflops=gflops,
        per_kind=tuple(per_kind),
        seed=first.seed,
        trial=0,
    )


def measure_with_trials(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    kinds: Tuple[str, ...],
    trials: int = 3,
    how: str = "median",
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    runner: Runner = run_hpl,
) -> Tuple[MeasurementRecord, float]:
    """Aggregated record plus the *total* measurement cost of all trials."""
    if trials < 1:
        raise MeasurementError("trials must be >= 1")
    records = []
    cost = 0.0
    for trial in range(trials):
        result = runner(
            spec, config, n, params=params, noise=noise, seed=seed, trial=trial
        )
        record = MeasurementRecord.from_result(result, kinds, seed=seed, trial=trial)
        cost += record.wall_time_s
        records.append(record)
    return aggregate_records(records, how), cost


def _measure_trials_entry(
    entry: Tuple[int, ClusterConfig],
    spec: ClusterSpec,
    kinds: Tuple[str, ...],
    trials: int,
    how: str,
    params: Optional[HPLParameters],
    noise: Optional[NoiseSpec],
    seed: int,
    runner: Runner,
) -> Tuple[MeasurementRecord, float]:
    """One plan entry's full trial batch — module-level for process pools."""
    n, config = entry
    return measure_with_trials(
        spec, config, n, kinds,
        trials=trials, how=how, params=params, noise=noise, seed=seed,
        runner=runner,
    )


def _measure_trials_config_batch(
    group: Tuple[ClusterConfig, List[Tuple[int, int]]],
    spec: ClusterSpec,
    kinds: Tuple[str, ...],
    trials: int,
    how: str,
    params: Optional[HPLParameters],
    noise: Optional[NoiseSpec],
    seed: int,
    batch_runner: BatchRunner,
) -> List[Tuple[int, MeasurementRecord, float]]:
    """One configuration's entire ``sizes x trials`` grid in a single
    batched simulation — module-level for process pools.  Returns
    aggregated records tagged with their original plan positions."""
    config, indexed = group
    ns = [n for _, n in indexed for _ in range(trials)]
    ts = [t for _ in indexed for t in range(trials)]
    results = batch_runner(
        spec, config, ns, params=params, noise=noise, seed=seed, trial=ts
    )
    out: List[Tuple[int, MeasurementRecord, float]] = []
    for slot, (index, _) in enumerate(indexed):
        records = []
        cost = 0.0
        for t in range(trials):
            record = MeasurementRecord.from_result(
                results[slot * trials + t], kinds, seed=seed, trial=t
            )
            cost += record.wall_time_s
            records.append(record)
        out.append((index, aggregate_records(records, how), cost))
    return out


def run_campaign_with_trials(
    spec: ClusterSpec,
    plan: CampaignPlan,
    trials: int = 3,
    how: str = "median",
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    runner: Runner = run_hpl,
    workers: int = 1,
) -> CampaignResult:
    """A construction campaign with repeated, robustly aggregated trials.

    The cost ledger charges every trial (a 3-trial campaign costs ~3x the
    single-shot one — the price of outlier immunity).

    Runners with a :data:`~repro.measure.campaign.BATCH_RUNNERS` entry (the
    default) simulate each configuration's whole ``sizes x trials`` grid in
    one vectorized walker call; every ``(config, N, trial)`` still seeds
    its own noise stream, so datasets and cost ledgers are bit-identical
    to the run-by-run path regardless of batching or ``workers``.
    """
    if trials < 1:
        raise MeasurementError("trials must be >= 1")
    entries = list(plan.construction_runs())
    batch_runner = BATCH_RUNNERS.get(runner)
    if batch_runner is None:
        measure = partial(
            _measure_trials_entry,
            spec=spec,
            kinds=plan.kinds,
            trials=trials,
            how=how,
            params=params,
            noise=noise,
            seed=seed,
            runner=runner,
        )
        results = ParallelRunner(workers=workers).map(measure, entries)
    else:
        measure_batch = partial(
            _measure_trials_config_batch,
            spec=spec,
            kinds=plan.kinds,
            trials=trials,
            how=how,
            params=params,
            noise=noise,
            seed=seed,
            batch_runner=batch_runner,
        )
        chunks = ParallelRunner(workers=workers).map(
            measure_batch, group_runs_by_config(entries)
        )
        ordered: List[Optional[Tuple[MeasurementRecord, float]]] = [None] * len(entries)
        for chunk in chunks:
            for index, record, run_cost in chunk:
                ordered[index] = (record, run_cost)
        results = ordered
    dataset = Dataset()
    cost: Dict[Tuple[str, int], float] = defaultdict(float)
    for record, run_cost in results:
        dataset.add(record)
        cost[(_charged_kind(record), record.n)] += run_cost
    return CampaignResult(
        plan_name=f"{plan.name}-x{trials}", dataset=dataset, cost_by_kind_and_n=dict(cost)
    )
