"""Measurement campaigns: the runs the models are fitted to.

The paper fits its models to timed HPL runs over parameter grids
(Tables 2, 5 and 8) and accounts the measurement cost (Tables 3 and 6).
This subpackage owns:

* :mod:`repro.measure.record` / :mod:`repro.measure.dataset` —
  per-run measurement records with per-kind ``Ta``/``Tc`` breakdowns,
  filtering, and JSON/CSV (de)serialization;
* :mod:`repro.measure.grids` — the construction and evaluation grids of
  the Basic, NL and NS protocols;
* :mod:`repro.measure.campaign` — drives the simulator over a grid and
  accounts the simulated measurement cost.
"""

from repro.measure.campaign import CampaignResult, measure_configuration, run_campaign
from repro.measure.dataset import Dataset
from repro.measure.grids import (
    CampaignPlan,
    basic_plan,
    evaluation_configs,
    nl_plan,
    ns_plan,
)
from repro.measure.record import KindMeasurement, MeasurementRecord

__all__ = [
    "CampaignPlan",
    "CampaignResult",
    "Dataset",
    "KindMeasurement",
    "MeasurementRecord",
    "basic_plan",
    "evaluation_configs",
    "measure_configuration",
    "nl_plan",
    "ns_plan",
    "run_campaign",
]
