"""Measurement records: what one timed HPL run contributes to a dataset.

A record stores the configuration (as a flat kind tuple, the paper's
``(P1, M1, P2, M2)``), the problem order, the wall time, and — per PE kind
— the mean detailed-timing breakdown of that kind's processes.  The model
layer consumes ``ta`` / ``tc`` per kind; everything else is kept for
analysis and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.errors import MeasurementError
from repro.hpl.driver import HPLResult
from repro.hpl.timing import PhaseTimes


@dataclass(frozen=True)
class KindMeasurement:
    """Per-kind view of one run: the mean phase breakdown of the kind's
    processes plus the allocation that produced it."""

    kind_name: str
    pe_count: int
    procs_per_pe: int
    #: The workload family's phase vector (:class:`PhaseTimes` for HPL;
    #: any :class:`repro.workloads.PhaseVector` subclass otherwise).
    phases: PhaseTimes

    @property
    def ta(self) -> float:
        return self.phases.ta

    @property
    def tc(self) -> float:
        return self.phases.tc

    @property
    def total(self) -> float:
        return self.phases.total

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind_name,
            "pe_count": self.pe_count,
            "procs_per_pe": self.procs_per_pe,
            "phases": self.phases.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "KindMeasurement":
        # Lazy import: the workloads package sits above the measure layer
        # (workload modules register their batch runners with it).
        from repro.workloads.phases import phases_from_dict

        return cls(
            kind_name=str(data["kind"]),
            pe_count=int(data["pe_count"]),
            procs_per_pe=int(data["procs_per_pe"]),
            phases=phases_from_dict(data["phases"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class MeasurementRecord:
    """One timed HPL run."""

    kinds: Tuple[str, ...]  # kind-name order of the flat tuple
    config_tuple: Tuple[int, ...]  # (P1, M1, P2, M2, ...)
    n: int
    total_processes: int
    wall_time_s: float
    gflops: float
    per_kind: Tuple[KindMeasurement, ...]
    seed: int = 0
    trial: int = 0

    def __post_init__(self) -> None:
        if len(self.config_tuple) != 2 * len(self.kinds):
            raise MeasurementError(
                f"config tuple {self.config_tuple} does not match kinds {self.kinds}"
            )
        if self.n < 1:
            raise MeasurementError(f"invalid problem order {self.n}")
        if self.wall_time_s <= 0:
            raise MeasurementError(f"invalid wall time {self.wall_time_s}")

    # -- identity ---------------------------------------------------------------

    @property
    def label(self) -> str:
        return ",".join(str(v) for v in self.config_tuple)

    def config(self) -> ClusterConfig:
        return ClusterConfig.from_tuple(self.kinds, self.config_tuple)

    def key(self) -> Tuple:
        """Unique identity of the measurement within a campaign."""
        return (self.config_tuple, self.n, self.trial)

    # -- per-kind access -----------------------------------------------------------

    def kind(self, kind_name: str) -> KindMeasurement:
        for km in self.per_kind:
            if km.kind_name == kind_name:
                return km
        raise MeasurementError(
            f"kind {kind_name!r} not measured in config {self.label}"
        )

    def has_kind(self, kind_name: str) -> bool:
        return any(km.kind_name == kind_name for km in self.per_kind)

    def pe_count(self, kind_name: str) -> int:
        index = self.kinds.index(kind_name)
        return self.config_tuple[2 * index]

    def procs_per_pe(self, kind_name: str) -> int:
        index = self.kinds.index(kind_name)
        return self.config_tuple[2 * index + 1]

    @property
    def is_single_kind(self) -> bool:
        return sum(1 for km in self.per_kind if km.pe_count > 0) == 1

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "kinds": list(self.kinds),
            "config": list(self.config_tuple),
            "n": self.n,
            "p": self.total_processes,
            "wall_s": self.wall_time_s,
            "gflops": self.gflops,
            "per_kind": [km.to_dict() for km in self.per_kind],
            "seed": self.seed,
            "trial": self.trial,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MeasurementRecord":
        return cls(
            kinds=tuple(data["kinds"]),  # type: ignore[arg-type]
            config_tuple=tuple(int(v) for v in data["config"]),  # type: ignore[union-attr]
            n=int(data["n"]),
            total_processes=int(data["p"]),
            wall_time_s=float(data["wall_s"]),
            gflops=float(data["gflops"]),
            per_kind=tuple(
                KindMeasurement.from_dict(km)  # type: ignore[arg-type]
                for km in data["per_kind"]  # type: ignore[union-attr]
            ),
            seed=int(data.get("seed", 0)),
            trial=int(data.get("trial", 0)),
        )

    @classmethod
    def from_result(
        cls,
        result: HPLResult,
        kinds: Sequence[str],
        seed: int = 0,
        trial: int = 0,
    ) -> "MeasurementRecord":
        """Turn a simulator result into a measurement record.

        ``kinds`` fixes the flat-tuple ordering (cluster kind order), so
        records from different configurations align column-wise.
        """
        config = result.config
        per_kind = []
        for name in kinds:
            alloc = config.allocation(name)
            if alloc.pe_count == 0:
                continue
            per_kind.append(
                KindMeasurement(
                    kind_name=name,
                    pe_count=alloc.pe_count,
                    procs_per_pe=alloc.procs_per_pe,
                    phases=result.kind_phases(name),
                )
            )
        return cls(
            kinds=tuple(kinds),
            config_tuple=config.as_flat_tuple(kinds),
            n=result.n,
            total_processes=result.total_processes,
            wall_time_s=result.wall_time_s,
            gflops=result.gflops,
            per_kind=tuple(per_kind),
            seed=seed,
            trial=trial,
        )
