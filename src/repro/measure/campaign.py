"""Campaign execution: run a plan's grids on the simulator.

:func:`run_campaign` performs every construction measurement of a
:class:`~repro.measure.grids.CampaignPlan` and accounts the measurement
cost per PE kind and problem size — the quantity the paper reports in its
Tables 3 and 6 ("HPL execution time for measurements", ~6 hours for the
Basic grid vs ~10 minutes for NS).

Evaluation measurements (the ground truth the estimated-best configuration
is verified against) are produced by :func:`run_evaluation` and kept in a
separate dataset so nothing from the evaluation grid can leak into model
construction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.errors import MeasurementError
from repro.hpl.driver import HPLResult, NoiseSpec, run_hpl, run_hpl_batch
from repro.hpl.schedule import HPLParameters
from repro.measure.dataset import Dataset
from repro.measure.grids import CampaignPlan, group_runs_by_config
from repro.measure.record import MeasurementRecord
from repro.perf.parallel import ParallelRunner

#: Anything that executes one run and returns an :class:`HPLResult`-shaped
#: object (``run_hpl``, or an alternative application such as
#: :func:`repro.exts.apps.run_summa` — the paper's method is not HPL-bound).
Runner = Callable[..., HPLResult]

#: Batched runner: all problem orders of one configuration in a single call
#: (``run_hpl_batch`` signature), returning one result per entry.
BatchRunner = Callable[..., List[HPLResult]]

#: Scalar runner -> batched equivalent.  Campaigns whose runner has an
#: entry here simulate each configuration's whole size grid in one
#: vectorized walker call; unknown runners keep the run-by-run path.
#: Both paths produce bit-identical records — registering a batch runner
#: is a pure throughput decision.
BATCH_RUNNERS: Dict[Runner, BatchRunner] = {run_hpl: run_hpl_batch}


@dataclass
class CampaignResult:
    """Construction dataset plus the measurement-cost ledger."""

    plan_name: str
    dataset: Dataset
    #: seconds of simulated measurement per (kind_name, N) — the rows of the
    #: paper's Tables 3 and 6.  Runs of a homogeneous kind are charged to
    #: that kind.  Treated as immutable once the result is built (the
    #: per-kind rollup below is computed once).
    cost_by_kind_and_n: Dict[Tuple[str, int], float] = field(default_factory=dict)
    _kind_totals: Optional[Dict[str, float]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def cost_for_kind(self, kind_name: str) -> float:
        if self._kind_totals is None:
            rollup: Dict[str, float] = defaultdict(float)
            for (kind, _), cost in self.cost_by_kind_and_n.items():
                rollup[kind] += cost
            self._kind_totals = dict(rollup)
        return self._kind_totals.get(kind_name, 0.0)

    def cost_for_n(self, kind_name: str, n: int) -> float:
        return self.cost_by_kind_and_n.get((kind_name, n), 0.0)

    @property
    def total_cost_s(self) -> float:
        return sum(self.cost_by_kind_and_n.values())


def measure_configuration(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    kinds: Tuple[str, ...],
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    trial: int = 0,
    runner: Runner = run_hpl,
) -> MeasurementRecord:
    """One timed run, returned as a measurement record."""
    result = runner(
        spec, config, n, params=params, noise=noise, seed=seed, trial=trial
    )
    return MeasurementRecord.from_result(result, kinds, seed=seed, trial=trial)


def _measure_entry(
    entry: Tuple[int, ClusterConfig],
    spec: ClusterSpec,
    kinds: Tuple[str, ...],
    params: Optional[HPLParameters],
    noise: Optional[NoiseSpec],
    seed: int,
    runner: Runner,
) -> MeasurementRecord:
    """One ``(n, config)`` plan entry — module-level so process-pool
    workers can unpickle it."""
    n, config = entry
    return measure_configuration(
        spec, config, n, kinds, params=params, noise=noise, seed=seed, runner=runner
    )


def _measure_config_batch(
    group: Tuple[ClusterConfig, List[Tuple[int, int]]],
    spec: ClusterSpec,
    kinds: Tuple[str, ...],
    params: Optional[HPLParameters],
    noise: Optional[NoiseSpec],
    seed: int,
    batch_runner: BatchRunner,
) -> List[Tuple[int, MeasurementRecord]]:
    """All sizes of one configuration in a single batched simulation —
    module-level so process-pool workers can unpickle it.  Returns records
    tagged with their original plan positions."""
    config, indexed = group
    results = batch_runner(
        spec, config, [n for _, n in indexed], params=params, noise=noise, seed=seed
    )
    return [
        (index, MeasurementRecord.from_result(result, kinds, seed=seed, trial=0))
        for (index, _), result in zip(indexed, results)
    ]


def _measure_entries(
    entries: Sequence[Tuple[int, ClusterConfig]],
    spec: ClusterSpec,
    kinds: Tuple[str, ...],
    params: Optional[HPLParameters],
    noise: Optional[NoiseSpec],
    seed: int,
    runner: Runner,
    workers: int,
) -> List[MeasurementRecord]:
    """Measure plan entries, batched per configuration when the runner has
    a registered batch form, and return records in plan-entry order."""
    batch_runner = BATCH_RUNNERS.get(runner)
    if batch_runner is None:
        measure = partial(
            _measure_entry,
            spec=spec,
            kinds=kinds,
            params=params,
            noise=noise,
            seed=seed,
            runner=runner,
        )
        return ParallelRunner(workers=workers).map(measure, list(entries))
    measure_batch = partial(
        _measure_config_batch,
        spec=spec,
        kinds=kinds,
        params=params,
        noise=noise,
        seed=seed,
        batch_runner=batch_runner,
    )
    chunks = ParallelRunner(workers=workers).map(
        measure_batch, group_runs_by_config(list(entries))
    )
    records: List[Optional[MeasurementRecord]] = [None] * sum(
        len(chunk) for chunk in chunks
    )
    for chunk in chunks:
        for index, record in chunk:
            records[index] = record
    return records


def run_campaign(
    spec: ClusterSpec,
    plan: CampaignPlan,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    runner: Runner = run_hpl,
    workers: int = 1,
) -> CampaignResult:
    """Execute every construction measurement of ``plan``.

    Runners with a :data:`BATCH_RUNNERS` entry (the default ``run_hpl``)
    simulate each configuration's whole size grid in one vectorized walker
    call; records are reassembled into plan order, so the dataset and cost
    ledger are bit-identical to the run-by-run path.

    ``workers > 1`` fans the work out over a process pool
    (:class:`repro.perf.parallel.ParallelRunner`) — one configuration
    batch (or, for unregistered runners, one run) per task.  Every run
    derives its own noise stream from ``(seed, config, N, trial)``, so
    results do not depend on ``workers``; the default ``workers=1`` never
    forks.
    """
    records = _measure_entries(
        list(plan.construction_runs()),
        spec, plan.kinds, params, noise, seed, runner, workers,
    )
    dataset = Dataset()
    cost: Dict[Tuple[str, int], float] = defaultdict(float)
    for record in records:
        dataset.add(record)
        cost[(_charged_kind(record), record.n)] += record.wall_time_s
    return CampaignResult(
        plan_name=plan.name, dataset=dataset, cost_by_kind_and_n=dict(cost)
    )


def run_evaluation(
    spec: ClusterSpec,
    plan: CampaignPlan,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    runner: Runner = run_hpl,
    workers: int = 1,
) -> Dataset:
    """Measure the full evaluation grid (the ground-truth runs the paper
    uses to find the *actual* best configuration).

    Batching and ``workers`` behave exactly as in :func:`run_campaign`.
    """
    records = _measure_entries(
        list(plan.evaluation_runs()),
        spec, plan.kinds, params, noise, seed, runner, workers,
    )
    return Dataset(records)


def _charged_kind(record: MeasurementRecord) -> str:
    """Which kind a construction run's cost is charged to.

    Construction runs are homogeneous; a heterogeneous run (not used by the
    standard plans, but allowed) is charged to its bottleneck kind.
    """
    measured = [km for km in record.per_kind if km.pe_count > 0]
    if not measured:
        raise MeasurementError(f"record {record.label} measures no kind")
    if len(measured) == 1:
        return measured[0].kind_name
    return max(measured, key=lambda km: km.total).kind_name
