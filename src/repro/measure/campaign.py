"""Campaign execution: run a plan's grids on the simulator.

:func:`run_campaign` performs every construction measurement of a
:class:`~repro.measure.grids.CampaignPlan` and accounts the measurement
cost per PE kind and problem size — the quantity the paper reports in its
Tables 3 and 6 ("HPL execution time for measurements", ~6 hours for the
Basic grid vs ~10 minutes for NS).

Evaluation measurements (the ground truth the estimated-best configuration
is verified against) are produced by :func:`run_evaluation` and kept in a
separate dataset so nothing from the evaluation grid can leak into model
construction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.errors import MeasurementError
from repro.hpl.driver import HPLResult, NoiseSpec, run_hpl
from repro.hpl.schedule import HPLParameters
from repro.measure.dataset import Dataset
from repro.measure.grids import CampaignPlan
from repro.measure.record import MeasurementRecord
from repro.perf.parallel import ParallelRunner

#: Anything that executes one run and returns an :class:`HPLResult`-shaped
#: object (``run_hpl``, or an alternative application such as
#: :func:`repro.exts.apps.run_summa` — the paper's method is not HPL-bound).
Runner = Callable[..., HPLResult]


@dataclass
class CampaignResult:
    """Construction dataset plus the measurement-cost ledger."""

    plan_name: str
    dataset: Dataset
    #: seconds of simulated measurement per (kind_name, N) — the rows of the
    #: paper's Tables 3 and 6.  Runs of a homogeneous kind are charged to
    #: that kind.  Treated as immutable once the result is built (the
    #: per-kind rollup below is computed once).
    cost_by_kind_and_n: Dict[Tuple[str, int], float] = field(default_factory=dict)
    _kind_totals: Optional[Dict[str, float]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def cost_for_kind(self, kind_name: str) -> float:
        if self._kind_totals is None:
            rollup: Dict[str, float] = defaultdict(float)
            for (kind, _), cost in self.cost_by_kind_and_n.items():
                rollup[kind] += cost
            self._kind_totals = dict(rollup)
        return self._kind_totals.get(kind_name, 0.0)

    def cost_for_n(self, kind_name: str, n: int) -> float:
        return self.cost_by_kind_and_n.get((kind_name, n), 0.0)

    @property
    def total_cost_s(self) -> float:
        return sum(self.cost_by_kind_and_n.values())


def measure_configuration(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    kinds: Tuple[str, ...],
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    trial: int = 0,
    runner: Runner = run_hpl,
) -> MeasurementRecord:
    """One timed run, returned as a measurement record."""
    result = runner(
        spec, config, n, params=params, noise=noise, seed=seed, trial=trial
    )
    return MeasurementRecord.from_result(result, kinds, seed=seed, trial=trial)


def _measure_entry(
    entry: Tuple[int, ClusterConfig],
    spec: ClusterSpec,
    kinds: Tuple[str, ...],
    params: Optional[HPLParameters],
    noise: Optional[NoiseSpec],
    seed: int,
    runner: Runner,
) -> MeasurementRecord:
    """One ``(n, config)`` plan entry — module-level so process-pool
    workers can unpickle it."""
    n, config = entry
    return measure_configuration(
        spec, config, n, kinds, params=params, noise=noise, seed=seed, runner=runner
    )


def run_campaign(
    spec: ClusterSpec,
    plan: CampaignPlan,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    runner: Runner = run_hpl,
    workers: int = 1,
) -> CampaignResult:
    """Execute every construction measurement of ``plan``.

    ``workers > 1`` fans the runs out over a process pool
    (:class:`repro.perf.parallel.ParallelRunner`).  Every run derives its
    own noise stream from ``(seed, config, N, trial)``, so the resulting
    dataset and cost ledger are bit-identical to the serial ones; the
    default ``workers=1`` never forks.
    """
    measure = partial(
        _measure_entry,
        spec=spec,
        kinds=plan.kinds,
        params=params,
        noise=noise,
        seed=seed,
        runner=runner,
    )
    records = ParallelRunner(workers=workers).map(
        measure, list(plan.construction_runs())
    )
    dataset = Dataset()
    cost: Dict[Tuple[str, int], float] = defaultdict(float)
    for record in records:
        dataset.add(record)
        cost[(_charged_kind(record), record.n)] += record.wall_time_s
    return CampaignResult(
        plan_name=plan.name, dataset=dataset, cost_by_kind_and_n=dict(cost)
    )


def run_evaluation(
    spec: ClusterSpec,
    plan: CampaignPlan,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    runner: Runner = run_hpl,
    workers: int = 1,
) -> Dataset:
    """Measure the full evaluation grid (the ground-truth runs the paper
    uses to find the *actual* best configuration).

    ``workers`` behaves exactly as in :func:`run_campaign`.
    """
    measure = partial(
        _measure_entry,
        spec=spec,
        kinds=plan.kinds,
        params=params,
        noise=noise,
        seed=seed,
        runner=runner,
    )
    records = ParallelRunner(workers=workers).map(
        measure, list(plan.evaluation_runs())
    )
    return Dataset(records)


def _charged_kind(record: MeasurementRecord) -> str:
    """Which kind a construction run's cost is charged to.

    Construction runs are homogeneous; a heterogeneous run (not used by the
    standard plans, but allowed) is charged to its bottleneck kind.
    """
    measured = [km for km in record.per_kind if km.pe_count > 0]
    if not measured:
        raise MeasurementError(f"record {record.label} measures no kind")
    if len(measured) == 1:
        return measured[0].kind_name
    return max(measured, key=lambda km: km.total).kind_name
