"""Campaign grids: the paper's Tables 2, 5 and 8.

A :class:`CampaignPlan` lists the *construction* runs (homogeneous
single-kind configurations the models are fitted to) and the *evaluation*
grid (the heterogeneous candidate configurations the optimizer searches and
the verification measurements cover).

The three protocols:

========  =========================================  ==========================
protocol  construction N                             construction P2 (M2=1..6)
========  =========================================  ==========================
Basic     400 600 800 1200 1600 2400 3200 4800 6400  1..8
NL        1600 3200 4800 6400                        1 2 4 8
NS        400 800 1200 1600                          1 2 4 8
========  =========================================  ==========================

All protocols use Athlon P1=1, M1=1..6 for construction.  Evaluation uses
N = {3200, 4800, 6400, 8000, 9600} for Basic and adds 1600 for NL/NS, over
the 62 configurations P1 in {0,1} x M1 in 1..6 x P2 in 0..8 with M2 = 1.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.cluster.config import ClusterConfig, enumerate_configs
from repro.errors import MeasurementError

#: Kind order of the paper's flat tuples.
PAPER_KINDS: Tuple[str, str] = ("athlon", "pentium2")

BASIC_CONSTRUCTION_SIZES: Tuple[int, ...] = (400, 600, 800, 1200, 1600, 2400, 3200, 4800, 6400)
BASIC_EVALUATION_SIZES: Tuple[int, ...] = (3200, 4800, 6400, 8000, 9600)
NL_CONSTRUCTION_SIZES: Tuple[int, ...] = (1600, 3200, 4800, 6400)
NS_CONSTRUCTION_SIZES: Tuple[int, ...] = (400, 800, 1200, 1600)
NL_NS_EVALUATION_SIZES: Tuple[int, ...] = (1600, 3200, 4800, 6400, 8000, 9600)

PROC_RANGE: Tuple[int, ...] = (1, 2, 3, 4, 5, 6)  # M1 / M2 sweep


@dataclass(frozen=True)
class CampaignPlan:
    """A full measurement plan: construction and evaluation grids."""

    name: str
    kinds: Tuple[str, ...]
    construction_sizes: Tuple[int, ...]
    construction_configs: Tuple[ClusterConfig, ...]
    evaluation_sizes: Tuple[int, ...]
    evaluation_configs: Tuple[ClusterConfig, ...]

    def __post_init__(self) -> None:
        if not self.construction_sizes or not self.construction_configs:
            raise MeasurementError(f"{self.name}: empty construction grid")

    @property
    def construction_count(self) -> int:
        """Number of construction measurements (the paper's '486 sets')."""
        return len(self.construction_sizes) * len(self.construction_configs)

    @property
    def evaluation_count(self) -> int:
        return len(self.evaluation_sizes) * len(self.evaluation_configs)

    def construction_runs(self) -> Iterable[Tuple[int, ClusterConfig]]:
        for n in self.construction_sizes:
            for config in self.construction_configs:
                yield n, config

    def evaluation_runs(self) -> Iterable[Tuple[int, ClusterConfig]]:
        for n in self.evaluation_sizes:
            for config in self.evaluation_configs:
                yield n, config


def group_runs_by_config(
    entries: Sequence[Tuple[int, ClusterConfig]],
) -> List[Tuple[ClusterConfig, List[Tuple[int, int]]]]:
    """Group plan entries by configuration for batched simulation.

    The plans enumerate runs size-major; the batched walker wants all
    sizes of one configuration together.  Returns
    ``[(config, [(original_index, n), ...]), ...]`` in first-seen config
    order — the original indices let the campaign reassemble records into
    plan order, keeping datasets and cost ledgers identical to the
    run-by-run path.
    """
    groups: "OrderedDict[ClusterConfig, List[Tuple[int, int]]]" = OrderedDict()
    for index, (n, config) in enumerate(entries):
        groups.setdefault(config, []).append((index, n))
    return list(groups.items())


def construction_configs(
    athlon_procs: Sequence[int] = PROC_RANGE,
    pentium2_pes: Sequence[int] = tuple(range(1, 9)),
    pentium2_procs: Sequence[int] = PROC_RANGE,
) -> List[ClusterConfig]:
    """Homogeneous single-kind construction configurations.

    Athlon: ``(1, M1, 0, 0)`` for each M1; Pentium-II: ``(0, 0, P2, M2)``
    for each (P2, M2) pair.
    """
    configs: List[ClusterConfig] = []
    for m1 in athlon_procs:
        configs.append(ClusterConfig.from_tuple(PAPER_KINDS, (1, m1, 0, 0)))
    for p2 in pentium2_pes:
        for m2 in pentium2_procs:
            configs.append(ClusterConfig.from_tuple(PAPER_KINDS, (0, 0, p2, m2)))
    return configs


def evaluation_configs() -> List[ClusterConfig]:
    """The 62 candidate configurations of the paper's evaluation grids:
    P1 in {0, 1}, M1 in 1..6, P2 in 0..8, M2 = 1 (empty config excluded)."""
    return list(
        enumerate_configs(
            PAPER_KINDS,
            pe_ranges={"athlon": (0, 1), "pentium2": tuple(range(0, 9))},
            proc_ranges={"athlon": PROC_RANGE, "pentium2": (1,)},
        )
    )


def basic_plan() -> CampaignPlan:
    """The Basic protocol (paper Table 2): 486 construction runs."""
    return CampaignPlan(
        name="basic",
        kinds=PAPER_KINDS,
        construction_sizes=BASIC_CONSTRUCTION_SIZES,
        construction_configs=tuple(construction_configs()),
        evaluation_sizes=BASIC_EVALUATION_SIZES,
        evaluation_configs=tuple(evaluation_configs()),
    )


def nl_plan() -> CampaignPlan:
    """The NL protocol (paper Table 5): 120 construction runs, large N."""
    return CampaignPlan(
        name="nl",
        kinds=PAPER_KINDS,
        construction_sizes=NL_CONSTRUCTION_SIZES,
        construction_configs=tuple(
            construction_configs(pentium2_pes=(1, 2, 4, 8))
        ),
        evaluation_sizes=NL_NS_EVALUATION_SIZES,
        evaluation_configs=tuple(evaluation_configs()),
    )


def ns_plan() -> CampaignPlan:
    """The NS protocol (paper Table 8): 120 construction runs, small N."""
    return CampaignPlan(
        name="ns",
        kinds=PAPER_KINDS,
        construction_sizes=NS_CONSTRUCTION_SIZES,
        construction_configs=tuple(
            construction_configs(pentium2_pes=(1, 2, 4, 8))
        ),
        evaluation_sizes=NL_NS_EVALUATION_SIZES,
        evaluation_configs=tuple(evaluation_configs()),
    )


def custom_plan(
    spec,
    construction_sizes: Sequence[int],
    evaluation_sizes: Sequence[int],
    max_procs: int = 4,
    multiproc_kinds: Sequence[str] | None = None,
    name: str = "custom",
) -> CampaignPlan:
    """Generalize the paper's grids to an arbitrary cluster.

    Construction: for every kind, single-kind configurations over a
    log-spaced subset of its PE counts (1, 2, 4, ... up to all of them),
    each with 1..``max_procs`` processes per PE — the paper's recipe, per
    kind.  Evaluation: the cross product of per-kind PE counts (0 or the
    log-spaced subset) with the multiprocess sweep restricted to
    ``multiproc_kinds`` (default: the fastest kind, as in the paper where
    only the Athlon multiprocesses) to keep the candidate set tractable.
    """
    if max_procs < 1:
        raise MeasurementError("max_procs must be >= 1")
    kinds = list(spec.kind_names)
    if multiproc_kinds is None:
        fastest = max(spec.kinds, key=lambda k: k.peak_gflops)
        multiproc_kinds = [fastest.name]
    unknown = set(multiproc_kinds) - set(kinds)
    if unknown:
        raise MeasurementError(f"unknown multiproc kinds: {sorted(unknown)}")

    def pe_subset(available: int) -> List[int]:
        counts = []
        count = 1
        while count < available:
            counts.append(count)
            count *= 2
        counts.append(available)
        return sorted(set(counts))

    construction: List[ClusterConfig] = []
    for kind in kinds:
        available = spec.pe_count(kind)
        for pe in pe_subset(available):
            for procs in range(1, max_procs + 1):
                flat = []
                for other in kinds:
                    flat.extend((pe, procs) if other == kind else (0, 0))
                construction.append(ClusterConfig.from_tuple(kinds, flat))

    pe_ranges = {
        kind: [0] + pe_subset(spec.pe_count(kind)) for kind in kinds
    }
    proc_ranges = {
        kind: tuple(range(1, max_procs + 1)) if kind in multiproc_kinds else (1,)
        for kind in kinds
    }
    evaluation = list(enumerate_configs(kinds, pe_ranges, proc_ranges))

    return CampaignPlan(
        name=name,
        kinds=tuple(kinds),
        construction_sizes=tuple(int(n) for n in construction_sizes),
        construction_configs=tuple(construction),
        evaluation_sizes=tuple(int(n) for n in evaluation_sizes),
        evaluation_configs=tuple(evaluation),
    )


def plan_by_name(name: str) -> CampaignPlan:
    """Look up a protocol plan: ``"basic"``, ``"nl"`` or ``"ns"``."""
    factories = {"basic": basic_plan, "nl": nl_plan, "ns": ns_plan}
    if name not in factories:
        raise MeasurementError(f"unknown protocol {name!r}; have {sorted(factories)}")
    return factories[name]()
