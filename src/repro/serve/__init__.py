"""``repro.serve`` — the estimation service.

The paper's workflow is "measure once, decide often": a campaign costs
hours of cluster time, every subsequent estimate is milliseconds.  This
package turns a directory of saved pipelines into a long-lived service
many schedulers/clients can share:

* :mod:`repro.serve.registry` — named, fingerprinted pipeline entries
  with hot reload (re-save a directory, the entry swaps atomically);
* :mod:`repro.serve.batcher` — async micro-batching of concurrent
  requests into the vectorized :class:`~repro.core.estimator.Estimator`
  paths, with bounded-queue admission control and typed load shedding;
* :mod:`repro.serve.server` — the asyncio JSON-lines frontend with
  graceful drain-on-shutdown;
* :mod:`repro.serve.protocol` — the wire format and typed errors;
* :mod:`repro.serve.metrics` — per-endpoint latency histograms, batch
  size distribution, cache hit rates;
* :mod:`repro.serve.client` — a blocking client (``repro client``) and
  an asyncio load generator for benches and smoke tests;
* :mod:`repro.serve.shared` — zero-copy shared model artifacts and the
  fleet-wide stats block (``multiprocessing.shared_memory``);
* :mod:`repro.serve.fleet` — the multi-process serving fleet: N
  replicas sharding one port (``SO_REUSEPORT`` or a front-router),
  shared artifacts, two-phase promotion fan-out, crash respawn.

Run it: ``repro serve --dir name=path/to/saved-pipeline`` (add
``--workers N`` for a fleet).
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import ServeClient, ServeReplyError, fire_concurrent, fire_timed
from repro.serve.fleet import FleetConfig, FleetSupervisor, reuse_port_supported
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import Overloaded, ProtocolError, Request, parse_request
from repro.serve.registry import ModelRegistry, RegistryEntry, UnknownPipeline
from repro.serve.server import EstimationServer
from repro.serve.shared import (
    ArtifactSegment,
    FleetStatsBlock,
    load_pipeline_from_segment,
    pack_pipeline_segment,
)

__all__ = [
    "ArtifactSegment",
    "EstimationServer",
    "FleetConfig",
    "FleetStatsBlock",
    "FleetSupervisor",
    "MicroBatcher",
    "ModelRegistry",
    "Overloaded",
    "ProtocolError",
    "RegistryEntry",
    "Request",
    "ServeClient",
    "ServeMetrics",
    "ServeReplyError",
    "UnknownPipeline",
    "fire_concurrent",
    "fire_timed",
    "load_pipeline_from_segment",
    "pack_pipeline_segment",
    "parse_request",
    "reuse_port_supported",
]
