"""``repro.serve`` — the estimation service.

The paper's workflow is "measure once, decide often": a campaign costs
hours of cluster time, every subsequent estimate is milliseconds.  This
package turns a directory of saved pipelines into a long-lived service
many schedulers/clients can share:

* :mod:`repro.serve.registry` — named, fingerprinted pipeline entries
  with hot reload (re-save a directory, the entry swaps atomically);
* :mod:`repro.serve.batcher` — async micro-batching of concurrent
  requests into the vectorized :class:`~repro.core.estimator.Estimator`
  paths, with bounded-queue admission control and typed load shedding;
* :mod:`repro.serve.server` — the asyncio JSON-lines frontend with
  graceful drain-on-shutdown;
* :mod:`repro.serve.protocol` — the wire format and typed errors;
* :mod:`repro.serve.metrics` — per-endpoint latency histograms, batch
  size distribution, cache hit rates;
* :mod:`repro.serve.client` — a blocking client (``repro client``) and
  an asyncio load generator for benches and smoke tests.

Run it: ``repro serve --dir name=path/to/saved-pipeline``.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import ServeClient, ServeReplyError, fire_concurrent
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import Overloaded, ProtocolError, Request, parse_request
from repro.serve.registry import ModelRegistry, RegistryEntry, UnknownPipeline
from repro.serve.server import EstimationServer

__all__ = [
    "EstimationServer",
    "MicroBatcher",
    "ModelRegistry",
    "Overloaded",
    "ProtocolError",
    "RegistryEntry",
    "Request",
    "ServeClient",
    "ServeMetrics",
    "ServeReplyError",
    "UnknownPipeline",
    "fire_concurrent",
    "parse_request",
]
