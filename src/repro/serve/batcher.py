"""Async micro-batching over the vectorized estimation paths.

The service's data-plane ops (``estimate``, ``optimize``, ``whatif``)
funnel through one :class:`MicroBatcher`.  Concurrent requests queue up;
a single worker drains the queue in *micro-batches*, groups the batch's
requests by what can share one vectorized model evaluation, and fans the
results back out to per-request futures:

* ``estimate`` requests grouping on ``(pipeline, configuration)`` merge
  their problem orders into one
  :meth:`~repro.core.pipeline.EstimationPipeline.estimate_totals` call
  (one polynomial evaluation over the union instead of one call per
  request — element-wise, so each request's numbers are bitwise those of
  a direct call);
* ``optimize`` requests grouping on ``(pipeline, backend, budget,
  max_cost, alpha)`` merge their orders into one
  :meth:`~repro.core.pipeline.EstimationPipeline.optimize_many` batched
  search under that backend (requests asking different backends,
  budgets or cost constraints never share a search run) — and that
  search rides the candidate-axis grid kernel
  (:mod:`repro.core.grid_kernel`), so a micro-batch of optimize
  requests turns into a handful of block evaluations instead of
  thousands of scalar model calls;
* ``pareto`` requests grouping on ``(pipeline, budget, max_cost)``
  merge their orders into one
  :meth:`~repro.core.pipeline.EstimationPipeline.pareto_many` frontier
  sweep, each reply carrying the full (untruncated) frontier with its
  provenance fingerprint;
* ``whatif`` requests evaluate one configuration across *every*
  registered pipeline, reusing the same per-entry cached path.

Every group key also carries the request's optional ``workload``
assertion; a request whose workload does not match the addressed
pipeline's family fails with a typed ``InvalidRequest`` instead of
returning numbers from the wrong simulator's models, and a ``whatif``
with a workload sweeps only the pipelines of that family.

**Admission control.**  The pending queue is bounded; :meth:`submit`
never blocks.  When the queue is full the request is shed immediately
with a typed :class:`~repro.serve.protocol.Overloaded` — under overload
the service degrades into fast, honest rejections instead of unbounded
latency.  The suggested ``retry_after_ms`` scales with the configured
batch window so clients back off past at least one drain cycle.

**Batch window.**  After the first request of a batch arrives the worker
waits ``batch_window_s`` (0 disables the wait) for concurrent arrivals
to pile up, then drains up to ``max_batch`` requests.  ``max_batch=1``
turns micro-batching off entirely — the configuration benchmarked as the
"batching off" baseline.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    ERROR_INVALID_REQUEST,
    ERROR_SHUTTING_DOWN,
    Overloaded,
    ProtocolError,
    Request,
    finite_or_none,
)
from repro.serve.registry import ModelRegistry, RegistryEntry


@dataclass
class _WorkItem:
    request: Request
    future: "asyncio.Future[Dict[str, object]]"
    enqueued: float = field(default_factory=time.perf_counter)


class MicroBatcher:
    """Bounded-queue micro-batching dispatcher over a model registry."""

    def __init__(
        self,
        registry: ModelRegistry,
        metrics: Optional[ServeMetrics] = None,
        max_pending: int = 256,
        max_batch: int = 64,
        batch_window_s: float = 0.002,
    ):
        if max_pending < 1:
            raise ReproError(f"max_pending must be >= 1, got {max_pending}")
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        self.registry = registry
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self._queue: "asyncio.Queue[Optional[_WorkItem]]" = asyncio.Queue()
        self._worker: Optional[asyncio.Task] = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(self._run())

    async def drain_and_stop(self) -> None:
        """Refuse new work, answer everything already admitted, stop.

        The sentinel is enqueued *after* the last admitted request, and
        the worker processes the queue strictly in order, so every
        in-flight request gets its reply before the worker exits.
        """
        if self._closed:
            return
        self._closed = True
        await self._queue.put(None)
        if self._worker is not None:
            await self._worker
            self._worker = None

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    # -- admission ----------------------------------------------------------

    def submit(self, request: Request) -> "asyncio.Future[Dict[str, object]]":
        """Admit one request; returns the future holding its result dict.

        Raises :class:`Overloaded` (load shed) when the pending queue is
        full and :class:`ProtocolError` (``ShuttingDown``) once draining
        has begun.  Never blocks.
        """
        if self._closed:
            raise ProtocolError(
                "service is shutting down", ERROR_SHUTTING_DOWN
            )
        if self._queue.qsize() >= self.max_pending:
            retry_ms = max(self.batch_window_s * 2e3, 10.0)
            raise Overloaded(self._queue.qsize(), self.max_pending, retry_ms)
        future: "asyncio.Future[Dict[str, object]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._queue.put_nowait(_WorkItem(request, future))
        return future

    # -- worker -------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                return
            batch = [item]
            if self.batch_window_s > 0 and len(batch) < self.max_batch:
                await asyncio.sleep(self.batch_window_s)
            while len(batch) < self.max_batch and not self._queue.empty():
                extra = self._queue.get_nowait()
                if extra is None:
                    # Sentinel: finish this batch, then stop.
                    self._execute(batch)
                    return
                batch.append(extra)
            self._execute(batch)

    # -- execution ----------------------------------------------------------

    def _execute(self, batch: List[_WorkItem]) -> None:
        groups = self._group(batch)
        self.metrics.record_batch(size=len(batch), groups=len(groups))
        for items, runner in groups:
            try:
                results = runner()
            except Exception as exc:  # typed per-group failure, not a crash
                for item in items:
                    if not item.future.done():
                        item.future.set_exception(exc)
                continue
            for item, result in zip(items, results):
                if not item.future.done():
                    item.future.set_result(result)

    def _group(self, batch: List[_WorkItem]):
        """Partition a batch into (items, runner) work groups."""
        estimate_groups: Dict[Tuple[str, tuple], List[_WorkItem]] = {}
        optimize_groups: Dict[Tuple, List[_WorkItem]] = {}
        pareto_groups: Dict[
            Tuple[str, Optional[int], Optional[float]], List[_WorkItem]
        ] = {}
        out = []
        for item in batch:
            op = item.request.op
            if op == "estimate":
                key = (
                    item.request.pipeline,
                    item.request.config,
                    item.request.workload,
                )
                estimate_groups.setdefault(key, []).append(item)
            elif op == "optimize":
                search_key = (
                    item.request.pipeline,
                    item.request.backend,
                    item.request.budget,
                    item.request.max_cost,
                    item.request.alpha,
                    item.request.workload,
                )
                optimize_groups.setdefault(search_key, []).append(item)
            elif op == "pareto":
                pareto_key = (
                    item.request.pipeline,
                    item.request.budget,
                    item.request.max_cost,
                    item.request.workload,
                )
                pareto_groups.setdefault(pareto_key, []).append(item)
            elif op == "whatif":
                out.append(([item], lambda it=item: [self._run_whatif(it.request)]))
            else:
                out.append(
                    (
                        [item],
                        lambda it=item: (_ for _ in ()).throw(
                            ProtocolError(f"op {it.request.op!r} is not batchable")
                        ),
                    )
                )
        for items in estimate_groups.values():
            out.append((items, lambda group=items: self._run_estimates(group)))
        for items in optimize_groups.values():
            out.append((items, lambda group=items: self._run_optimizes(group)))
        for items in pareto_groups.values():
            out.append((items, lambda group=items: self._run_paretos(group)))
        return out

    def _check_workload(self, request: Request, entry: RegistryEntry) -> None:
        """Enforce a request's workload assertion against the entry's
        family — a typed ``InvalidRequest``, because the caller addressed
        a pipeline whose models answer a different workload."""
        if request.workload is None:
            return
        actual = entry.workload
        if request.workload != actual:
            raise ProtocolError(
                f"pipeline {entry.name!r} serves workload {actual!r}, "
                f"not {request.workload!r}",
                ERROR_INVALID_REQUEST,
                extra={
                    "field": "workload",
                    "pipeline": entry.name,
                    "pipeline_workload": actual,
                    "requested_workload": request.workload,
                },
            )

    def _run_estimates(self, items: List[_WorkItem]) -> List[Dict[str, object]]:
        """One vectorized evaluation for every request of one
        ``(pipeline, config, workload)`` group, scattered back per
        request."""
        first = items[0].request
        entry = self.registry.get(first.pipeline)
        self._check_workload(first, entry)
        config = entry.parse_config(first.config)
        union: List[int] = []
        seen = set()
        for item in items:
            for n in item.request.ns:
                if n not in seen:
                    seen.add(n)
                    union.append(n)
        totals = entry.cached_totals(config, union)
        by_n = {n: float(t) for n, t in zip(union, totals)}
        results = []
        for item in items:
            request_ns = list(item.request.ns)
            results.append(
                {
                    "pipeline": entry.name,
                    "fingerprint": entry.fingerprint,
                    "config": list(first.config),
                    "ns": request_ns,
                    "totals": [by_n[n] for n in request_ns],
                }
            )
        return results

    def _run_optimizes(self, items: List[_WorkItem]) -> List[Dict[str, object]]:
        """One batched ``optimize_many`` for every request of one
        ``(pipeline, backend, budget)`` group (orders merged, rankings
        scattered back; all requests of the group asked for the same
        search backend, so they legitimately share its run)."""
        first = items[0].request
        entry = self.registry.get(first.pipeline)
        self._check_workload(first, entry)
        union: List[int] = []
        seen = set()
        for item in items:
            for n in item.request.ns:
                if n not in seen:
                    seen.add(n)
                    union.append(n)
        outcomes = entry.pipeline.optimize_many(
            union,
            backend=first.backend,
            budget=first.budget,
            max_cost=first.max_cost,
            alpha=first.alpha,
        )
        by_n = {n: outcome for n, outcome in zip(union, outcomes)}
        for outcome in outcomes:
            self.metrics.record_search(outcome.stats)
        kinds = entry.pipeline.plan.kinds
        results = []
        for item in items:
            sizes = []
            for n in item.request.ns:
                outcome = by_n[n]
                stats = outcome.stats
                size_result = {
                    "n": n,
                    "candidates": len(outcome.ranking),
                    "ranking": [
                        {
                            "config": list(e.config.as_flat_tuple(kinds)),
                            "estimate_s": e.estimate_s,
                        }
                        for e in outcome.top(item.request.top)
                    ],
                }
                if stats is not None:
                    size_result["search"] = {
                        "backend": stats.backend,
                        "evaluations": stats.evaluations,
                        "pruned_candidates": stats.pruned_candidates,
                        "exhausted": stats.exhausted,
                        "complete": outcome.complete,
                    }
                sizes.append(size_result)
            results.append(
                {
                    "pipeline": entry.name,
                    "fingerprint": entry.fingerprint,
                    "sizes": sizes,
                }
            )
        return results

    def _run_paretos(self, items: List[_WorkItem]) -> List[Dict[str, object]]:
        """One batched ``pareto_many`` for every request of one
        ``(pipeline, budget, max_cost)`` group.  Each reply carries its
        sizes' *entire* frontiers — truncation would silently drop
        non-dominated points, so the protocol does not offer ``top``
        here — plus the serving fingerprint as per-point provenance."""
        first = items[0].request
        entry = self.registry.get(first.pipeline)
        self._check_workload(first, entry)
        union: List[int] = []
        seen = set()
        for item in items:
            for n in item.request.ns:
                if n not in seen:
                    seen.add(n)
                    union.append(n)
        outcomes = entry.pipeline.pareto_many(
            union, budget=first.budget, max_cost=first.max_cost
        )
        by_n = {n: outcome for n, outcome in zip(union, outcomes)}
        for outcome in outcomes:
            self.metrics.record_search(outcome.stats)
            self.metrics.record_frontier(outcome)
        kinds = entry.pipeline.plan.kinds
        results = []
        for item in items:
            results.append(
                {
                    "pipeline": entry.name,
                    "fingerprint": entry.fingerprint,
                    "sizes": [by_n[n].to_dict(kinds) for n in item.request.ns],
                }
            )
        return results

    def _run_whatif(self, request: Request) -> Dict[str, object]:
        """One configuration's totals under every registered pipeline —
        the serving form of the what-if study: same question, every
        loaded model generation answers.  A ``workload`` field restricts
        the sweep to pipelines of that family (comparing a sorting model
        against an HPL model answers nothing)."""
        entries = self.registry.entries()
        if not entries:
            raise ProtocolError("no pipelines registered")
        if request.workload is not None:
            entries = [e for e in entries if e.workload == request.workload]
            if not entries:
                raise ProtocolError(
                    f"no pipelines registered for workload {request.workload!r} "
                    f"(serving: {', '.join(self.registry.names())})",
                    ERROR_INVALID_REQUEST,
                    extra={"field": "workload", "requested_workload": request.workload},
                )
        ns = list(request.ns)
        per_pipeline: Dict[str, Dict[str, object]] = {}
        totals_by_name: Dict[str, List[float]] = {}
        for entry in entries:
            try:
                config = entry.parse_config(request.config)
                totals = [float(t) for t in entry.cached_totals(config, ns)]
            except ReproError as exc:
                per_pipeline[entry.name] = {"error": str(exc)}
                continue
            per_pipeline[entry.name] = {
                "fingerprint": entry.fingerprint,
                "workload": entry.workload,
                "totals": totals,
            }
            totals_by_name[entry.name] = totals
        best = []
        for i in range(len(ns)):
            candidates = [
                (totals[i], name)
                for name, totals in totals_by_name.items()
                if finite_or_none(totals[i]) is not None
            ]
            best.append(min(candidates)[1] if candidates else None)
        return {
            "config": list(request.config),
            "ns": ns,
            "pipelines": per_pipeline,
            "best": best,
        }
