"""Hot-reloadable model registry: named, fingerprinted pipeline entries.

The registry is the serving layer's source of truth for *which models
answer queries*.  Each entry pairs a caller-facing name with one loaded
pipeline (:func:`repro.core.persistence.load_pipeline`) and is keyed by
``(name, fingerprint)`` where the fingerprint covers every model's
coefficients plus the adjustment — exactly the estimate-cache
invalidation fingerprint, so "same fingerprint" provably means "same
answers".

**Hot reload.**  ``save_pipeline`` re-writing a served directory must
take effect without restarting the service and without dropping
requests.  :meth:`ModelRegistry.refresh` compares each entry's on-disk
file signature (mtime + size of the four artifacts); a changed directory
is re-loaded *beside* the live entry and only then swapped in — one
attribute assignment, atomic under the event loop, so a batch already
holding the old entry finishes against the old models while the next
batch sees the new ones.  A half-written directory (re-save in progress)
fails to load and is simply skipped until a later refresh finds it whole:
serving continues from the previous generation.  When the swap changes
the fingerprint the entry's estimate cache is retired with it (its
counters fold into the registry's session totals); a byte-identical
re-save keeps the cache — the entries are still provably valid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.core.persistence import load_pipeline
from repro.core.pipeline import EstimationPipeline
from repro.errors import ReproError
from repro.perf.cache import CacheStats, EstimateCache
from repro.serve.protocol import ERROR_UNKNOWN_PIPELINE, ProtocolError

#: The artifacts whose on-disk state defines a pipeline directory's
#: signature for change detection.
_WATCHED_FILES = ("manifest.json", "models.json", "cluster.json", "construction.json")

#: Default LRU capacity of each entry's estimate cache.
DEFAULT_CACHE_CAPACITY = 4096


def _directory_signature(directory: Path) -> Tuple[Tuple[str, int, int], ...]:
    """(name, mtime_ns, size) of every watched artifact that exists."""
    out = []
    for name in _WATCHED_FILES:
        path = directory / name
        try:
            stat = path.stat()
        except OSError:
            continue
        out.append((name, stat.st_mtime_ns, stat.st_size))
    return tuple(out)


class UnknownPipeline(ProtocolError):
    """A request named a pipeline the registry does not hold."""

    def __init__(self, name: str, known: Sequence[str]):
        known_text = ", ".join(sorted(known)) or "(none)"
        super().__init__(
            f"no pipeline named {name!r} (serving: {known_text})",
            ERROR_UNKNOWN_PIPELINE,
        )


@dataclass
class RegistryEntry:
    """One served pipeline generation.

    Immutable in spirit: a reload builds a *new* entry and swaps it into
    the registry, so any in-flight batch keeps a consistent
    (pipeline, fingerprint, cache) triple for its whole execution.
    """

    name: str
    directory: Path
    pipeline: EstimationPipeline
    fingerprint: str
    cache: EstimateCache
    signature: Tuple[Tuple[str, int, int], ...]
    generation: int
    loaded_monotonic: float
    #: Where the artifacts came from: ``"disk"`` (watched + reloadable)
    #: or ``"shm:<segment>"`` (fleet-shared; swapped only by the
    #: promotion protocol, never by the disk watcher).
    source: str = "disk"

    @property
    def key(self) -> Tuple[str, str]:
        """The registry key: pipeline name + model fingerprint."""
        return (self.name, self.fingerprint)

    @property
    def workload(self) -> str:
        """The workload family tag this entry's pipeline was built for."""
        return self.pipeline.config.workload

    def parse_config(self, values: Sequence[int]) -> ClusterConfig:
        config = ClusterConfig.from_tuple(self.pipeline.plan.kinds, values)
        config.validate_against(self.pipeline.spec)
        return config

    def cached_totals(self, config: ClusterConfig, ns: Sequence[int]) -> np.ndarray:
        """Adjusted totals over ``ns``, served from this entry's cache
        where possible; misses go through one vectorized
        :meth:`~repro.core.pipeline.EstimationPipeline.estimate_totals`
        call, so values are bitwise those of the direct path."""
        sizes = [int(n) for n in ns]
        out = np.empty(len(sizes), dtype=float)
        key = self.cache.key_of(config)
        missing: List[int] = []
        for i, n in enumerate(sizes):
            hit = self.cache.get(key, n)
            if hit is None:
                missing.append(i)
            else:
                out[i] = hit
        if missing:
            values = self.pipeline.estimate_totals(
                config, [sizes[i] for i in missing]
            )
            for j, i in enumerate(missing):
                out[i] = values[j]
                self.cache.put(key, sizes[i], float(values[j]))
        return out

    def model_inventory(self) -> Dict[str, object]:
        """Structured model listing for the ``models`` op."""
        facade = self.pipeline.models
        models = []
        for model in facade.models():
            data = model.to_dict()
            models.append(
                {
                    "type": model.model_type,
                    "kind": model.kind_name,
                    "mi": model.mi,
                    "p": data.get("p"),
                    "composed": model.is_composed,
                    "fingerprint": model.fingerprint(),
                }
            )
        return {
            "pipeline": self.name,
            "workload": self.workload,
            "backend": facade.backend.name,
            "fingerprint": self.fingerprint,
            "generation": self.generation,
            "count": len(models),
            "models": models,
        }

    def cache_snapshot(self) -> Dict[str, object]:
        stats = self.cache.stats
        return {
            "fingerprint": self.fingerprint,
            "entries": len(self.cache),
            "capacity": self.cache.capacity,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "hit_rate": round(stats.hit_rate, 4),
        }


class ModelRegistry:
    """Name -> :class:`RegistryEntry` map with explicit/automatic reload."""

    def __init__(self, cache_capacity: Optional[int] = DEFAULT_CACHE_CAPACITY):
        self.cache_capacity = cache_capacity
        self._entries: Dict[str, RegistryEntry] = {}
        #: Counters of retired cache generations, folded on swap.
        self.retired_cache_stats = CacheStats()
        #: (name, error text) of reload attempts that failed and were skipped.
        self.last_reload_errors: List[Tuple[str, str]] = []
        #: Total failed reload attempts over the registry's lifetime (the
        #: per-refresh list above only shows the latest pass).
        self.reload_failures = 0
        #: Optional :class:`~repro.serve.metrics.ServeMetrics` to mirror
        #: failure counts into (the server attaches its own on startup).
        self.metrics = None

    # -- loading ------------------------------------------------------------

    def _load_entry(self, name: str, directory: Path, generation: int) -> RegistryEntry:
        signature = _directory_signature(directory)
        pipeline = load_pipeline(directory)
        # The pipeline's own search-engine cache fingerprint already covers
        # the facade (every model + memory bins), the adjustment and the
        # guard footprint — reuse it so serve-level invalidation can never
        # drift from the in-pipeline rule.
        fingerprint = pipeline.estimate_cache.fingerprint
        return RegistryEntry(
            name=name,
            directory=directory,
            pipeline=pipeline,
            fingerprint=fingerprint,
            cache=EstimateCache(fingerprint, capacity=self.cache_capacity),
            signature=signature,
            generation=generation,
            loaded_monotonic=time.monotonic(),
        )

    def add(self, name: str, directory: Path | str) -> RegistryEntry:
        """Load and register a saved pipeline directory under ``name``.

        Raises the loader's :class:`~repro.errors.ReproError` subclasses
        (missing directory, corrupt artifact, future format) unchanged.
        """
        if name in self._entries:
            raise ReproError(f"pipeline name {name!r} already registered")
        entry = self._load_entry(name, Path(directory), generation=1)
        self._entries[name] = entry
        return entry

    def entry_from_segment(self, name: str, segment, generation: int = 1) -> RegistryEntry:
        """Build (but do not register) an entry from a packed
        :class:`~repro.serve.shared.ArtifactSegment` — zero disk I/O.

        This is the fleet replica's load path: the supervisor packed and
        validated the artifacts once; here they are reconstituted from
        the shared buffer, bitwise-verified against the packed
        coefficient array, and wrapped in a fresh (process-local) cache.
        """
        from repro.serve.shared import load_pipeline_from_segment

        pipeline = load_pipeline_from_segment(segment)
        fingerprint = pipeline.estimate_cache.fingerprint
        return RegistryEntry(
            name=name,
            directory=Path(str(segment.meta.get("directory", segment.name))),
            pipeline=pipeline,
            fingerprint=fingerprint,
            cache=EstimateCache(fingerprint, capacity=self.cache_capacity),
            signature=(),
            generation=generation,
            loaded_monotonic=time.monotonic(),
            source=f"shm:{segment.name}",
        )

    def add_shared(self, name: str, segment) -> RegistryEntry:
        """Register a pipeline served from a shared artifact segment.

        Shared entries are exempt from the disk watcher
        (:meth:`refresh`); they change only through
        :meth:`install_entry`, driven by the fleet's promotion protocol.
        """
        if name in self._entries:
            raise ReproError(f"pipeline name {name!r} already registered")
        entry = self.entry_from_segment(name, segment, generation=1)
        self._entries[name] = entry
        return entry

    def install_entry(self, entry: RegistryEntry) -> RegistryEntry:
        """Atomically swap a fully-built entry in under its name.

        The fleet's two-phase promotion *commit*: the entry was staged
        (loaded and verified) during the prepare phase, so the commit is
        one dict assignment — in-flight batches keep the old entry,
        every later request sees the new one, and no request can observe
        a mix.  Cache-retirement semantics match :meth:`_swap`.
        """
        old = self._entries.get(entry.name)
        if old is not None:
            if entry.fingerprint == old.fingerprint:
                entry.cache = old.cache
            else:
                self.retired_cache_stats.merge(old.cache.stats)
            entry.generation = old.generation + 1
        self._entries[entry.name] = entry
        return entry

    # -- queries ------------------------------------------------------------

    def get(self, name: str) -> RegistryEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownPipeline(name, list(self._entries)) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def entries(self) -> List[RegistryEntry]:
        return [self._entries[name] for name in self.names()]

    def __len__(self) -> int:
        return len(self._entries)

    # -- hot reload ---------------------------------------------------------

    def _swap(
        self, old: RegistryEntry, directory: Optional[Path] = None
    ) -> Optional[RegistryEntry]:
        fresh = self._load_entry(
            old.name,
            old.directory if directory is None else directory,
            generation=old.generation + 1,
        )
        if fresh.fingerprint == old.fingerprint:
            # Same models, same answers: keep the warm cache (its entries
            # are still provably valid under the unchanged fingerprint).
            fresh.cache = old.cache
        else:
            self.retired_cache_stats.merge(old.cache.stats)
        self._entries[old.name] = fresh
        return fresh

    def promote(self, name: str, directory: Path | str) -> RegistryEntry:
        """Swap ``name`` to serve a (possibly different) pipeline directory
        — the calibration loop's promotion/rollback hook.

        The swap is one dict assignment after the new entry is fully
        loaded, so in-flight batches holding the old entry finish against
        it; cache-retirement semantics are exactly those of a hot reload
        (same fingerprint keeps the warm cache, a new one retires it into
        the session totals).  Raises the loader's errors unchanged and
        leaves the old entry serving if loading fails.
        """
        return self._swap(self.get(name), directory=Path(directory))

    def refresh(self, force: bool = False) -> List[str]:
        """Re-load every entry whose directory changed on disk.

        Returns the names that were swapped.  A directory that currently
        fails to load (e.g. a re-save caught mid-write) is *skipped* — the
        live entry keeps serving — and recorded in
        :attr:`last_reload_errors` for the ``stats``/``reload`` replies.
        """
        swapped: List[str] = []
        errors: List[Tuple[str, str]] = []
        for entry in list(self._entries.values()):
            if entry.source != "disk":
                continue  # shared entries swap via the promotion protocol
            if not force and _directory_signature(entry.directory) == entry.signature:
                continue
            try:
                self._swap(entry)
                swapped.append(entry.name)
            except ReproError as exc:
                errors.append((entry.name, str(exc)))
        self.last_reload_errors = errors
        if errors:
            self.reload_failures += len(errors)
            if self.metrics is not None:
                self.metrics.reload_failures += len(errors)
        return swapped

    def aggregate_cache_stats(self) -> CacheStats:
        """Session-total cache counters: every live entry plus every
        retired generation (what a fleet replica publishes per row)."""
        aggregate = CacheStats()
        aggregate.merge(self.retired_cache_stats)
        for entry in self.entries():
            aggregate.merge(entry.cache.stats)
        return aggregate

    def snapshot(self) -> Dict[str, object]:
        """Registry state for the ``stats`` op."""
        aggregate = self.aggregate_cache_stats()
        entries = {}
        for entry in self.entries():
            entries[entry.name] = {
                "directory": str(entry.directory),
                "source": entry.source,
                "generation": entry.generation,
                "protocol": entry.pipeline.plan.name,
                "workload": entry.workload,
                "cache": entry.cache_snapshot(),
            }
        return {
            "pipelines": entries,
            "session_cache": {
                "hits": aggregate.hits,
                "misses": aggregate.misses,
                "evictions": aggregate.evictions,
                "hit_rate": round(aggregate.hit_rate, 4),
            },
            "reload_errors": [
                {"pipeline": name, "error": text}
                for name, text in self.last_reload_errors
            ],
            "reload_failures": self.reload_failures,
        }
