"""Zero-copy shared model artifacts and fleet stats (serving layer).

A fleet of N replica processes serving the same pipelines should pay
~1x the artifact load cost and ~1x the resident model memory, not Nx.
This module provides the two shared-memory primitives the fleet
(:mod:`repro.serve.fleet`) builds on:

:class:`ArtifactSegment`
    One ``multiprocessing.shared_memory`` segment holding a saved
    pipeline's artifact bytes, the flattened model-coefficient array,
    and precomputed :class:`~repro.hpl.schedule.PanelTable` geometry.
    The supervisor packs it once (:func:`pack_pipeline_segment`); every
    replica attaches and reconstitutes its pipeline straight from the
    shared buffer (:func:`load_pipeline_from_segment`) — zero disk I/O,
    and the numpy geometry arrays are read-only *views* into the
    segment, so the kernel keeps one physical copy for the whole fleet.

:class:`FleetStatsBlock`
    A fixed-layout int64 block of per-replica serving counters.  Each
    replica owns exactly one row (single writer, monotonically
    non-decreasing counts, so a reader sampling mid-update only ever
    lags — it never sees invented history); the supervisor owns the
    per-replica restart counters and aggregates everything for the
    ``fleet_status`` op.

**Torn-artifact detection.**  ``load_pipeline_from_segment`` re-derives
the coefficient array from the parsed models and verifies it is bitwise
equal to the packed array.  The two representations are written
together at pack time, so any corruption — a half-written segment, a
reader racing a swap that the two-phase promotion protocol should have
made impossible — fails loudly as a :class:`~repro.errors.ModelError`
instead of serving wrong numbers.

**Lifecycle.**  The supervisor creates and unlinks segments; replicas
attach and close.  Under the ``fork`` start method (the fleet default)
every process shares the parent's ``resource_tracker``, so the
creator's single registration is authoritative and attachers must not
touch it.  Under ``spawn`` each attacher gets its *own* tracker, whose
attach-time registration would unlink the segment when that one process
exits, yanking it from under its siblings (bpo-39959; no ``track=False``
before Python 3.13) — spawn-context attachers pass ``untrack=True`` to
undo the registration.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.model_api import model_to_dict
from repro.core.persistence import pipeline_from_blobs, read_pipeline_blobs
from repro.core.pipeline import EstimationPipeline
from repro.errors import ModelError
from repro.hpl.schedule import HPLParameters, PanelTable, _build_panel_table
from repro.perf.cache import CacheStats
from repro.serve.metrics import FLEET_COUNTER_FIELDS, LATENCY_BUCKETS_MS

_MAGIC = b"RPROSEG1"
_ALIGN = 64

#: ``to_dict`` keys that are identity/metadata, not coefficients (the
#: same partition ``repro.cli`` uses for the model inventory listing).
_MODEL_META_KEYS = frozenset(
    ["kind", "p", "mi", "n_range", "p_range", "chisq_ta", "chisq_tc", "composed_from"]
)

#: Cap on precomputed panel tables per segment (matches the in-process
#: memo bound; a construction dataset touches far fewer keys).
MAX_PANEL_TABLES = 256

#: The per-table arrays shipped in a segment, in :class:`PanelTable`
#: field order.
_PANEL_ARRAY_FIELDS = (
    "owner", "width", "m_rows", "q", "pfact_flops",
    "update_flops", "laswp_bytes", "panel_nbytes",
)


def _attach(name: str, untrack: bool) -> shared_memory.SharedMemory:
    """Attach to an existing segment, optionally undoing the tracker
    registration (see module docstring: required under ``spawn``, wrong
    under ``fork``)."""
    shm = shared_memory.SharedMemory(name=name)
    if untrack:
        try:  # no ``track=False`` before Python 3.13; undo the registration
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    return shm


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ArtifactSegment:
    """Named blobs + named numpy arrays in one shared-memory segment.

    Layout: an 8-byte magic, a little-endian ``uint64`` header length,
    a JSON header (``meta`` dict, blob/array directories with offsets
    into the payload), then the 64-byte-aligned payload.  Arrays are
    returned as read-only views into the shared buffer — no copies.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self._owner = owner
        buf = shm.buf
        if bytes(buf[:8]) != _MAGIC:
            raise ModelError(
                f"shared segment {shm.name!r} has no artifact header "
                f"(bad magic); refusing to parse"
            )
        (header_len,) = struct.unpack_from("<Q", buf, 8)
        try:
            header = json.loads(bytes(buf[16:16 + header_len]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ModelError(
                f"corrupt header in shared segment {shm.name!r} ({exc})"
            ) from exc
        self.meta: Dict[str, object] = header.get("meta", {})
        self._blobs: Dict[str, Tuple[int, int]] = {
            name: (int(off), int(size))
            for name, (off, size) in header.get("blobs", {}).items()
        }
        self._arrays: Dict[str, Tuple[str, Tuple[int, ...], int]] = {
            name: (str(dtype), tuple(int(d) for d in shape), int(off))
            for name, (dtype, shape, off) in header.get("arrays", {}).items()
        }

    # -- construction --------------------------------------------------------

    @classmethod
    def pack(
        cls,
        meta: Mapping[str, object],
        blobs: Mapping[str, bytes],
        arrays: Mapping[str, np.ndarray],
    ) -> "ArtifactSegment":
        """Create a new segment holding ``blobs`` and ``arrays``."""
        blob_dir: Dict[str, List[int]] = {}
        array_dir: Dict[str, List[object]] = {}
        # Lay out the payload first against offset 0, then shift by the
        # header size (which depends on the directory JSON, which depends
        # on the offsets — resolved by computing relative offsets and one
        # fixed shift).
        offset = 0
        chunks: List[Tuple[int, bytes]] = []
        for name, blob in blobs.items():
            offset = _align(offset)
            blob_dir[name] = [offset, len(blob)]
            chunks.append((offset, bytes(blob)))
            offset += len(blob)
        contiguous: List[Tuple[int, np.ndarray]] = []
        for name, array in arrays.items():
            arr = np.ascontiguousarray(array)
            offset = _align(offset)
            array_dir[name] = [arr.dtype.str, list(arr.shape), offset]
            contiguous.append((offset, arr))
            offset += arr.nbytes
        payload_size = offset

        # The shift must not change the header length; pad the header to
        # a fixed alignment boundary so any directory size maps to the
        # same payload base.
        def header_bytes(shift: int) -> bytes:
            directory = {
                "meta": dict(meta),
                "blobs": {k: [v[0] + shift, v[1]] for k, v in blob_dir.items()},
                "arrays": {
                    k: [v[0], v[1], v[2] + shift] for k, v in array_dir.items()
                },
            }
            return json.dumps(directory, separators=(",", ":")).encode("utf-8")

        probe = header_bytes(0)
        base = _align(16 + len(probe) + 32)  # slack: offsets grow the JSON
        header = header_bytes(base)
        if 16 + len(header) > base:  # pragma: no cover - slack exhausted
            base = _align(16 + len(header) + 64)
            header = header_bytes(base)

        shm = shared_memory.SharedMemory(create=True, size=max(base + payload_size, 16))
        buf = shm.buf
        buf[:8] = _MAGIC
        struct.pack_into("<Q", buf, 8, len(header))
        buf[16:16 + len(header)] = header
        for off, blob in chunks:
            buf[base + off:base + off + len(blob)] = blob
        for off, arr in contiguous:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf, offset=base + off)
            view[...] = arr
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str, untrack: bool = False) -> "ArtifactSegment":
        """Attach to a segment packed by another process (non-owning)."""
        return cls(_attach(name, untrack), owner=False)

    # -- access --------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    def blob_names(self) -> List[str]:
        return sorted(self._blobs)

    def blob(self, name: str) -> bytes:
        off, size = self._blobs[name]
        return bytes(self._shm.buf[off:off + size])

    def array_names(self) -> List[str]:
        return sorted(self._arrays)

    def array(self, name: str) -> np.ndarray:
        """Read-only zero-copy view of one packed array."""
        dtype, shape, off = self._arrays[name]
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=off)
        view.flags.writeable = False
        return view

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment (owner only; attached views stay valid
        until their processes close)."""
        if self._owner:
            self._shm.unlink()

    def __enter__(self) -> "ArtifactSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            try:
                self.unlink()
            except FileNotFoundError:
                pass


# -- pipeline segments ---------------------------------------------------------


def model_coefficients(pipeline: EstimationPipeline) -> np.ndarray:
    """Every model's numeric coefficients flattened to one float64 array.

    Deterministic order (store order, then sorted ``to_dict`` keys, meta
    keys excluded), so two pipelines with bitwise-identical models yield
    bitwise-identical arrays — the torn-artifact check in
    :func:`load_pipeline_from_segment` relies on exactly that.
    """
    values: List[float] = []
    for model in pipeline.models.models():
        data = model_to_dict(model)
        for key in sorted(data):
            if key in _MODEL_META_KEYS or key == "type":
                continue
            value = data[key]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append(float(value))
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, (int, float)) and not isinstance(item, bool):
                        values.append(float(item))
    return np.asarray(values, dtype=np.float64)


def _panel_table_keys(pipeline: EstimationPipeline) -> List[Tuple[int, int, int]]:
    """The ``(n, nb, p)`` panel-table keys this pipeline's workload spans
    (every construction-measurement size x process count, default NB)."""
    nb = HPLParameters().nb
    dataset = pipeline.campaign.dataset
    keys = sorted({(int(r.n), nb, int(r.total_processes)) for r in dataset})
    return keys[:MAX_PANEL_TABLES]


def pack_pipeline_segment(directory: Path | str) -> ArtifactSegment:
    """Pack one saved pipeline directory into a shared segment.

    Reads the artifact bytes once, validates them by building a real
    pipeline (so a corrupt directory fails *here*, in the supervisor,
    never in a replica), and ships: the raw artifact blobs, the
    flattened coefficient array, and the precomputed panel-table
    geometry for every ``(n, p)`` the construction campaign measured.
    ``segment.meta['fingerprint']`` is the served model fingerprint.
    """
    src = Path(directory)
    blobs, origins = read_pipeline_blobs(src)
    pipeline = pipeline_from_blobs(blobs, origins)
    coefficients = model_coefficients(pipeline)

    arrays: Dict[str, np.ndarray] = {"coefficients": coefficients}
    tables_meta: List[Dict[str, int]] = []
    for i, (n, nb, p) in enumerate(_panel_table_keys(pipeline)):
        table = _build_panel_table(n, nb, p)
        prefix = f"pt{i}"
        for field_name in _PANEL_ARRAY_FIELDS:
            arrays[f"{prefix}.{field_name}"] = getattr(table, field_name)
        tables_meta.append(
            {"n": n, "nb": nb, "p": p, "nblocks": table.nblocks, "prefix": prefix}
        )

    meta = {
        "kind": "pipeline",
        "directory": str(src),
        "fingerprint": pipeline.estimate_cache.fingerprint,
        "panel_tables": tables_meta,
    }
    return ArtifactSegment.pack(meta, blobs, arrays)


def shared_panel_tables(segment: ArtifactSegment) -> List[PanelTable]:
    """Reconstitute the packed panel tables as zero-copy views."""
    tables: List[PanelTable] = []
    for entry in segment.meta.get("panel_tables", []):
        prefix = entry["prefix"]
        fields = {
            name: segment.array(f"{prefix}.{name}") for name in _PANEL_ARRAY_FIELDS
        }
        tables.append(
            PanelTable(
                n=int(entry["n"]),
                nb=int(entry["nb"]),
                p=int(entry["p"]),
                nblocks=int(entry["nblocks"]),
                **fields,
            )
        )
    return tables


def load_pipeline_from_segment(segment: ArtifactSegment) -> EstimationPipeline:
    """Reconstitute a pipeline from a packed segment — zero disk I/O.

    Bitwise-verifies the parsed models against the packed coefficient
    array (see module docstring) and raises
    :class:`~repro.errors.ModelError` on any mismatch.  The returned
    pipeline is the same object :func:`~repro.core.persistence.load_pipeline`
    would build from the original directory: identical fingerprint,
    identical answers.
    """
    names = segment.blob_names()
    blobs = {name: segment.blob(name) for name in names}
    origins = {name: f"shm:{segment.name}/{name}" for name in names}
    pipeline = pipeline_from_blobs(blobs, origins)

    packed = segment.array("coefficients")
    derived = model_coefficients(pipeline)
    if derived.shape != packed.shape or not np.array_equal(derived, packed):
        raise ModelError(
            f"torn shared artifact segment {segment.name!r}: parsed model "
            f"coefficients do not match the packed array (fingerprint "
            f"{segment.meta.get('fingerprint')!r})"
        )
    expected = segment.meta.get("fingerprint")
    actual = pipeline.estimate_cache.fingerprint
    if expected is not None and actual != expected:
        raise ModelError(
            f"torn shared artifact segment {segment.name!r}: fingerprint "
            f"{actual} != packed {expected}"
        )
    return pipeline


# -- fleet stats block ---------------------------------------------------------

#: Per-row bookkeeping fields preceding the serve counters.
STATS_META_FIELDS = ("pid", "port", "epoch", "heartbeat_us", "attached")
#: Cache counters appended after the latency fields.
STATS_CACHE_FIELDS = ("cache_hits", "cache_misses", "cache_evictions")

_N_LATENCY = len(LATENCY_BUCKETS_MS) + 1
_ROW_FIELDS: Tuple[str, ...] = (
    STATS_META_FIELDS
    + FLEET_COUNTER_FIELDS
    + tuple(f"lat_bucket_{i}" for i in range(_N_LATENCY))
    + ("latency_sum_us", "latency_max_us")
    + STATS_CACHE_FIELDS
)
_HEADER_WORDS = 4
_STATS_MAGIC = 0x52505246  # "RPRF"


@dataclass
class WorkerRow:
    """One replica's decoded stats row."""

    index: int
    pid: int
    port: int
    epoch: int
    heartbeat_us: int
    attached: bool
    counters: Dict[str, int]
    latency_counts: List[int]
    latency_sum_us: int
    latency_max_us: int
    cache: CacheStats
    restarts: int


class FleetStatsBlock:
    """Fixed-layout shared int64 stats: one row per replica.

    Layout: ``[magic, workers, row_words, reserved]`` header, then a
    supervisor-owned ``restarts`` word per replica, then ``workers``
    rows of :data:`_ROW_FIELDS` words.  Every word is an int64; every
    counter is monotonically non-decreasing, so unsynchronized reads are
    safe (a torn sample can only lag the true totals).
    """

    ROW_FIELDS = _ROW_FIELDS

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self._owner = owner
        header = np.ndarray((_HEADER_WORDS,), dtype=np.int64, buffer=shm.buf)
        if header[0] != _STATS_MAGIC:
            raise ModelError(
                f"shared segment {shm.name!r} is not a fleet stats block"
            )
        self.workers = int(header[1])
        row_words = int(header[2])
        if row_words != len(_ROW_FIELDS):
            raise ModelError(
                f"fleet stats block {shm.name!r} has {row_words}-word rows; "
                f"this build expects {len(_ROW_FIELDS)} (version skew)"
            )
        base = _HEADER_WORDS
        self._restarts = np.ndarray(
            (self.workers,), dtype=np.int64, buffer=shm.buf, offset=base * 8
        )
        self._rows = np.ndarray(
            (self.workers, row_words),
            dtype=np.int64,
            buffer=shm.buf,
            offset=(base + self.workers) * 8,
        )

    @classmethod
    def create(cls, workers: int) -> "FleetStatsBlock":
        if workers < 1:
            raise ModelError(f"fleet stats block needs >= 1 worker, got {workers}")
        words = _HEADER_WORDS + workers + workers * len(_ROW_FIELDS)
        shm = shared_memory.SharedMemory(create=True, size=words * 8)
        header = np.ndarray((_HEADER_WORDS,), dtype=np.int64, buffer=shm.buf)
        header[:] = (_STATS_MAGIC, workers, len(_ROW_FIELDS), 0)
        block = cls(shm, owner=True)
        block._restarts[:] = 0
        block._rows[:] = 0
        return block

    @classmethod
    def attach(cls, name: str, untrack: bool = False) -> "FleetStatsBlock":
        return cls(_attach(name, untrack), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- replica side (single writer per row) --------------------------------

    def publish(
        self,
        index: int,
        *,
        pid: int,
        port: int,
        epoch: int,
        heartbeat_us: int,
        counters: Sequence[int],
        latency_counts: Sequence[int],
        latency_sum_us: int,
        latency_max_us: int,
        cache: Tuple[int, int, int],
    ) -> None:
        """Overwrite row ``index`` with a replica's current totals."""
        if len(counters) != len(FLEET_COUNTER_FIELDS):
            raise ModelError(
                f"expected {len(FLEET_COUNTER_FIELDS)} counters, got {len(counters)}"
            )
        if len(latency_counts) != _N_LATENCY:
            raise ModelError(
                f"expected {_N_LATENCY} latency buckets, got {len(latency_counts)}"
            )
        row = [pid, port, epoch, heartbeat_us, 1]
        row.extend(int(c) for c in counters)
        row.extend(int(c) for c in latency_counts)
        row.extend((int(latency_sum_us), int(latency_max_us)))
        row.extend(int(c) for c in cache)
        self._rows[index, :] = row

    def mark_detached(self, index: int) -> None:
        """Freeze a row's counters but stop counting it as live."""
        self._rows[index, _ROW_FIELDS.index("attached")] = 0

    # -- supervisor side -----------------------------------------------------

    def bump_restart(self, index: int) -> int:
        self._restarts[index] += 1
        return int(self._restarts[index])

    def restarts(self) -> List[int]:
        return [int(v) for v in self._restarts]

    def row(self, index: int) -> WorkerRow:
        raw = [int(v) for v in self._rows[index]]
        fields = dict(zip(_ROW_FIELDS, raw))
        n_meta = len(STATS_META_FIELDS)
        n_counters = len(FLEET_COUNTER_FIELDS)
        counters = dict(
            zip(FLEET_COUNTER_FIELDS, raw[n_meta:n_meta + n_counters])
        )
        lat_base = n_meta + n_counters
        return WorkerRow(
            index=index,
            pid=fields["pid"],
            port=fields["port"],
            epoch=fields["epoch"],
            heartbeat_us=fields["heartbeat_us"],
            attached=bool(fields["attached"]),
            counters=counters,
            latency_counts=raw[lat_base:lat_base + _N_LATENCY],
            latency_sum_us=fields["latency_sum_us"],
            latency_max_us=fields["latency_max_us"],
            cache=CacheStats.from_tuple(
                (
                    fields["cache_hits"],
                    fields["cache_misses"],
                    fields["cache_evictions"],
                )
            ),
            restarts=int(self._restarts[index]),
        )

    def rows(self) -> List[WorkerRow]:
        return [self.row(i) for i in range(self.workers)]

    def aggregate(self) -> Dict[str, object]:
        """Fleet-wide rollup for the ``fleet_status`` op."""
        from repro.serve.metrics import LatencyHistogram

        totals = {field: 0 for field in FLEET_COUNTER_FIELDS}
        latency = LatencyHistogram()
        cache = CacheStats()
        per_worker: List[Dict[str, object]] = []
        for row in self.rows():
            if row.pid:
                for field, value in row.counters.items():
                    totals[field] += value
                latency.merge(
                    LatencyHistogram.from_counts(
                        row.latency_counts,
                        sum_ms=row.latency_sum_us / 1e3,
                        max_ms=row.latency_max_us / 1e3,
                    )
                )
                cache.merge(row.cache)
            per_worker.append(
                {
                    "index": row.index,
                    "pid": row.pid,
                    "port": row.port,
                    "epoch": row.epoch,
                    "attached": row.attached,
                    "restarts": row.restarts,
                    "requests": row.counters.get("requests", 0),
                    "shed": row.counters.get("shed", 0),
                }
            )
        return {
            "workers": per_worker,
            "totals": totals,
            "latency": latency.to_dict(),
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "hit_rate": round(cache.hit_rate, 4),
            },
            "restarts": self.restarts(),
        }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._restarts = None
        self._rows = None
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()


def seed_from_segment(segment: ArtifactSegment) -> int:
    """Seed this process's panel-table memo from a packed segment;
    returns the number of tables seeded (see
    :func:`repro.hpl.schedule.seed_panel_tables`)."""
    from repro.hpl.schedule import seed_panel_tables

    return seed_panel_tables(shared_panel_tables(segment))


__all__ = [
    "ArtifactSegment",
    "FleetStatsBlock",
    "WorkerRow",
    "MAX_PANEL_TABLES",
    "STATS_META_FIELDS",
    "STATS_CACHE_FIELDS",
    "model_coefficients",
    "pack_pipeline_segment",
    "load_pipeline_from_segment",
    "shared_panel_tables",
    "seed_from_segment",
]
