"""Wire protocol of the estimation service: JSON lines, typed errors.

One request per line, one reply per line, both UTF-8 JSON objects.  A
request carries a caller-chosen ``id`` (echoed verbatim in the reply so
pipelined requests can be matched out of order), an ``op``, and the
op-specific parameters::

    {"id": 1, "op": "estimate", "pipeline": "ns7", "config": [1,2,8,1], "ns": [3200]}
    {"id": 2, "op": "optimize", "pipeline": "ns7", "n": 3200, "top": 5,
     "backend": "branch-bound", "budget": 500}
    {"id": 3, "op": "whatif",   "config": [1,2,8,1], "ns": [1600, 3200]}
    {"id": 4, "op": "models",   "pipeline": "ns7"}
    {"id": 5, "op": "stats"}
    {"id": 6, "op": "reload"}
    {"id": 7, "op": "ping"}
    {"id": 8, "op": "observe",  "pipeline": "ns7", "record": {...measurement...}}
    {"id": 9, "op": "calibration", "pipeline": "ns7"}
    {"id": 10, "op": "fleet_status"}
    {"id": 11, "op": "pareto",  "pipeline": "ns7", "n": 3200, "max_cost": 0.01}

Replies are ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"type": ..., "message": ...}}``.
The error ``type`` is machine-dispatchable; :data:`ERROR_OVERLOADED` in
particular is the service's typed load-shedding reply — a client seeing
it should back off for the suggested ``retry_after_ms`` instead of
treating the service as broken.

Requests are validated *strictly*: a top-level field the op does not
define is a typed ``InvalidRequest`` error, never silently ignored —
so a new field (``max_cost``, say) sent to an older server fails loudly
instead of being dropped by version skew.

Estimates can legitimately be ``inf`` (a configuration outside every
model's trustworthy domain ranks unestimable, never cheap), so encoding
uses Python's JSON dialect with ``Infinity`` tokens; the bundled client
(:mod:`repro.serve.client`) reads them back bit-exactly.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.search import registered_search_backends
from repro.cost.pareto import parse_objective
from repro.errors import ReproError, SearchError
from repro.workloads import registered_workloads

#: Ops the service understands.  estimate/optimize/whatif/pareto flow
#: through the micro-batcher; the rest are control-plane ops answered
#: immediately.
BATCHED_OPS = ("estimate", "optimize", "whatif", "pareto")
CONTROL_OPS = (
    "models", "stats", "reload", "ping", "observe", "calibration", "fleet_status",
)
ALL_OPS = BATCHED_OPS + CONTROL_OPS

#: Top-level request fields each op accepts ("id"/"op" are implicit).
#: parse_request rejects anything outside the op's set with a typed
#: :data:`ERROR_INVALID_REQUEST` reply, so a misspelled or version-skewed
#: field can never be silently ignored.
_OP_FIELDS: Dict[str, frozenset] = {
    "estimate": frozenset({"pipeline", "config", "ns", "n", "workload"}),
    "optimize": frozenset(
        {
            "pipeline", "ns", "n", "top", "backend", "budget", "max_cost",
            "objective", "workload",
        }
    ),
    "whatif": frozenset({"config", "ns", "n", "backend", "budget", "workload"}),
    # No "top" for pareto: a served frontier is complete by construction
    # (truncating it would silently drop non-dominated points).
    "pareto": frozenset({"pipeline", "ns", "n", "budget", "max_cost", "workload"}),
    "models": frozenset({"pipeline"}),
    "calibration": frozenset({"pipeline"}),
    "reload": frozenset({"force"}),
    "observe": frozenset({"pipeline", "record", "source"}),
    "stats": frozenset(),
    "ping": frozenset(),
    "fleet_status": frozenset(),
}

#: Allowed fields that travel to handlers via ``Request.params`` rather
#: than a dedicated dataclass slot.
_PARAM_FIELDS = ("force", "record", "source")

ERROR_BAD_REQUEST = "BadRequest"
ERROR_INVALID_REQUEST = "InvalidRequest"
ERROR_UNKNOWN_PIPELINE = "UnknownPipeline"
ERROR_MODEL = "ModelError"
ERROR_OVERLOADED = "Overloaded"
ERROR_SHUTTING_DOWN = "ShuttingDown"
ERROR_INTERNAL = "Internal"


class ProtocolError(ReproError):
    """A request line the service refuses to act on, with its reply type.

    ``extra`` is a machine-readable payload merged into the error object
    of the reply (next to ``type``/``message``) — the uniform channel for
    typed error details like the offending field or the known values.
    """

    def __init__(
        self,
        message: str,
        error_type: str = ERROR_BAD_REQUEST,
        extra: Optional[Dict[str, object]] = None,
    ):
        super().__init__(message)
        self.error_type = error_type
        self._extra: Dict[str, object] = dict(extra) if extra else {}

    def extra(self) -> Dict[str, object]:
        return dict(self._extra)


class Overloaded(ProtocolError):
    """Typed admission-control rejection: the pending queue is full.

    Carries the queue state so the reply (and the caller's backoff) can be
    informed rather than blind.
    """

    def __init__(self, pending: int, capacity: int, retry_after_ms: float = 50.0):
        super().__init__(
            f"service overloaded: {pending} requests pending (capacity {capacity})",
            ERROR_OVERLOADED,
            extra={
                "pending": pending,
                "capacity": capacity,
                "retry_after_ms": retry_after_ms,
            },
        )
        self.pending = pending
        self.capacity = capacity
        self.retry_after_ms = retry_after_ms


@dataclass(frozen=True)
class Request:
    """One decoded request line."""

    id: object
    op: str
    pipeline: Optional[str] = None
    config: Optional[Tuple[int, ...]] = None
    ns: Tuple[int, ...] = ()
    top: int = 10
    #: Search backend for optimize/whatif (None = each pipeline's default).
    backend: Optional[str] = None
    #: Evaluation budget for budget-capable backends (None = unbounded).
    budget: Optional[int] = None
    #: Dollar budget for optimize/pareto (None = unconstrained).
    max_cost: Optional[float] = None
    #: Scalarization weight decoded from the wire field ``objective``
    #: (None = pure time; see :func:`repro.cost.pareto.parse_objective`).
    alpha: Optional[float] = None
    #: Workload family tag for batched ops (None = no constraint).  On
    #: pipeline-addressed ops it asserts the named pipeline's family; on
    #: ``whatif`` it restricts the sweep to pipelines of that family.
    workload: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)


def _require_int_list(payload: dict, key: str, minimum: int = 1) -> List[int]:
    value = payload.get(key)
    if not isinstance(value, list) or not value:
        raise ProtocolError(f"{key!r} must be a non-empty list of integers")
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise ProtocolError(f"{key!r} must contain only integers, got {item!r}")
        if item < minimum:
            raise ProtocolError(f"{key!r} values must be >= {minimum}, got {item}")
        out.append(item)
    return out


def _sizes_of(payload: dict) -> Tuple[int, ...]:
    """The problem orders of a request: ``ns`` (list) or scalar ``n``."""
    if "ns" in payload:
        return tuple(_require_int_list(payload, "ns"))
    n = payload.get("n")
    if isinstance(n, bool) or not isinstance(n, int) or n < 1:
        raise ProtocolError("request needs 'ns' (list of ints) or 'n' (positive int)")
    return (n,)


def parse_request(line: str) -> Request:
    """Decode and validate one request line.

    Raises :class:`ProtocolError` on anything malformed; the server turns
    that into a ``BadRequest`` reply (with ``id: null`` when even the id
    could not be recovered).
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")

    request_id = payload.get("id")
    op = payload.get("op")
    if op not in ALL_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (known: {', '.join(ALL_OPS)})"
        )

    allowed = _OP_FIELDS[op] | {"id", "op"}
    unknown = sorted(key for key in payload if key not in allowed)
    if unknown:
        raise ProtocolError(
            f"op {op!r} does not accept field(s) {', '.join(map(repr, unknown))} "
            f"(allowed: {', '.join(sorted(_OP_FIELDS[op])) or 'none'})",
            ERROR_INVALID_REQUEST,
        )

    pipeline = payload.get("pipeline")
    if pipeline is not None and not isinstance(pipeline, str):
        raise ProtocolError("'pipeline' must be a string")

    config: Optional[Tuple[int, ...]] = None
    ns: Tuple[int, ...] = ()
    top = 10
    backend: Optional[str] = None
    budget: Optional[int] = None
    max_cost: Optional[float] = None
    alpha: Optional[float] = None
    workload: Optional[str] = None

    if op in BATCHED_OPS:
        workload = payload.get("workload")
        if workload is not None:
            if not isinstance(workload, str):
                raise ProtocolError(
                    "'workload' must be a string",
                    ERROR_INVALID_REQUEST,
                    extra={"field": "workload"},
                )
            known_workloads = registered_workloads()
            if workload not in known_workloads:
                raise ProtocolError(
                    f"unknown workload {workload!r} "
                    f"(known: {', '.join(known_workloads)})",
                    ERROR_INVALID_REQUEST,
                    extra={"field": "workload", "known": list(known_workloads)},
                )
    if op in ("optimize", "whatif"):
        backend = payload.get("backend")
        if backend is not None:
            if not isinstance(backend, str):
                raise ProtocolError("'backend' must be a string")
            known_backends = registered_search_backends()
            if backend not in known_backends:
                raise ProtocolError(
                    f"unknown search backend {backend!r} "
                    f"(known: {', '.join(known_backends)})"
                )
    if op in ("optimize", "whatif", "pareto"):
        budget = payload.get("budget")
        if budget is not None:
            if isinstance(budget, bool) or not isinstance(budget, int) or budget < 1:
                raise ProtocolError("'budget' must be a positive integer")
    if op in ("optimize", "pareto"):
        max_cost = payload.get("max_cost")
        if max_cost is not None:
            if isinstance(max_cost, bool) or not isinstance(max_cost, (int, float)):
                raise ProtocolError("'max_cost' must be a number")
            max_cost = float(max_cost)
            if not math.isfinite(max_cost) or max_cost < 0:
                raise ProtocolError("'max_cost' must be finite and >= 0")
    if op == "optimize":
        objective = payload.get("objective")
        if objective is not None:
            if not isinstance(objective, str):
                raise ProtocolError("'objective' must be a string")
            try:
                alpha = parse_objective(objective)
            except SearchError as exc:
                raise ProtocolError(str(exc)) from exc

    if op in ("estimate", "whatif"):
        config = tuple(_require_int_list(payload, "config", minimum=0))
        ns = _sizes_of(payload)
    if op == "estimate" and pipeline is None:
        raise ProtocolError("'estimate' needs a 'pipeline' name")
    if op == "optimize":
        if pipeline is None:
            raise ProtocolError("'optimize' needs a 'pipeline' name")
        ns = _sizes_of(payload)
        top = payload.get("top", 10)
        if isinstance(top, bool) or not isinstance(top, int) or top < 1:
            raise ProtocolError("'top' must be a positive integer")
    if op == "pareto":
        if pipeline is None:
            raise ProtocolError("'pareto' needs a 'pipeline' name")
        ns = _sizes_of(payload)
    if op == "models" and pipeline is None:
        raise ProtocolError("'models' needs a 'pipeline' name")
    if op == "observe":
        if pipeline is None:
            raise ProtocolError("'observe' needs a 'pipeline' name")
        if not isinstance(payload.get("record"), dict):
            raise ProtocolError(
                "'observe' needs a 'record' object (a serialized measurement)"
            )

    params = {key: payload[key] for key in _PARAM_FIELDS if key in payload}
    return Request(
        id=request_id, op=op, pipeline=pipeline, config=config, ns=ns, top=top,
        backend=backend, budget=budget, max_cost=max_cost, alpha=alpha,
        workload=workload, params=params,
    )


def _jsonable(value):
    """Render numpy scalars/arrays and tuples into plain JSON values."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    return value


def encode_ok(request_id: object, result: Dict[str, object]) -> str:
    """Encode a success reply line for ``request_id``."""
    return json.dumps({"id": request_id, "ok": True, "result": _jsonable(result)})


def encode_error(
    request_id: object,
    error_type: str,
    message: str,
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """Encode a typed error reply line (``extra`` merges into the error)."""
    error: Dict[str, object] = {"type": error_type, "message": message}
    if extra:
        error.update(_jsonable(extra))
    return json.dumps({"id": request_id, "ok": False, "error": error})


def encode_exception(request_id: object, exc: BaseException) -> str:
    """The reply line for a failed request, typed by exception class.

    Any :class:`ProtocolError`'s ``extra()`` payload rides along in the
    error object (``Overloaded``'s queue state, an invalid field's
    details) — one mechanism, no per-subclass special cases.
    """
    if isinstance(exc, ProtocolError):
        return encode_error(request_id, exc.error_type, str(exc), exc.extra() or None)
    if isinstance(exc, ReproError):
        return encode_error(request_id, ERROR_MODEL, str(exc))
    return encode_error(request_id, ERROR_INTERNAL, f"{type(exc).__name__}: {exc}")


def decode_reply(line: str) -> dict:
    """Parse one reply line (used by clients and tests)."""
    payload = json.loads(line)
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError(f"malformed reply line: {line!r}")
    return payload


def finite_or_none(value: float) -> Optional[float]:
    """Human-facing rendering helper: ``inf`` means unestimable."""
    return None if not math.isfinite(value) else value
