"""Service metrics: latency histograms, batch sizes, shed/error counters.

Everything here is plain counting — no clocks are read in this module
(callers pass durations measured with ``time.perf_counter``), so the
numbers are exact for tests and cheap for the hot path.  A snapshot
(:meth:`ServeMetrics.to_dict`) is what the ``stats`` op returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Latency bucket upper bounds in milliseconds (last bucket is open).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)

#: Scalar counters every fleet replica publishes into the shared-memory
#: stats block, in slot order.  The supervisor sums these across live
#: rows to produce fleet-wide totals, so every field must be additive
#: (a count, never a rate or a gauge).
FLEET_COUNTER_FIELDS: Tuple[str, ...] = (
    "requests",
    "errors",
    "shed",
    "batches",
    "coalesced_requests",
    "reloads",
    "reload_failures",
    "connections",
    "observations",
    "drift_alarms",
    "promotions",
    "rollbacks",
    "search_evaluations",
    "search_pruned",
    "frontiers",
    "frontier_points",
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact count/sum/max."""

    def __init__(self, buckets_ms: Tuple[float, ...] = LATENCY_BUCKETS_MS):
        self.buckets_ms = buckets_ms
        self.counts = [0] * (len(buckets_ms) + 1)
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def record(self, seconds: float) -> None:
        ms = seconds * 1e3
        index = len(self.buckets_ms)
        for i, bound in enumerate(self.buckets_ms):
            if ms <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum_ms += ms
        self.max_ms = max(self.max_ms, ms)

    @property
    def mean_ms(self) -> float:
        return self.sum_ms / self.total if self.total else 0.0

    def quantile_ms(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation
        (the open last bucket reports the observed maximum)."""
        if not self.total:
            return 0.0
        rank = max(1, int(q * self.total + 0.999999))
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if i < len(self.buckets_ms):
                    return self.buckets_ms[i]
                return self.max_ms
        return self.max_ms

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's observations into this one.

        Requires identical bucket bounds — fleet aggregation merges
        per-replica histograms that all use :data:`LATENCY_BUCKETS_MS`.
        """
        if other.buckets_ms != self.buckets_ms:
            raise ValueError("cannot merge histograms with different buckets")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum_ms += other.sum_ms
        self.max_ms = max(self.max_ms, other.max_ms)

    @classmethod
    def from_counts(
        cls,
        counts: List[int],
        sum_ms: float,
        max_ms: float,
        buckets_ms: Tuple[float, ...] = LATENCY_BUCKETS_MS,
    ) -> "LatencyHistogram":
        """Rebuild a histogram from raw bucket counts (the shared-memory
        stats block stores exactly these three pieces per replica)."""
        if len(counts) != len(buckets_ms) + 1:
            raise ValueError(
                f"expected {len(buckets_ms) + 1} bucket counts, got {len(counts)}"
            )
        hist = cls(buckets_ms)
        hist.counts = [int(c) for c in counts]
        hist.total = sum(hist.counts)
        hist.sum_ms = float(sum_ms)
        hist.max_ms = float(max_ms)
        return hist

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.total,
            "mean_ms": round(self.mean_ms, 4),
            "max_ms": round(self.max_ms, 4),
            "p50_ms": self.quantile_ms(0.50),
            "p90_ms": self.quantile_ms(0.90),
            "p99_ms": self.quantile_ms(0.99),
            "buckets_ms": list(self.buckets_ms),
            "counts": list(self.counts),
        }


class Distribution:
    """Exact small-integer distribution (batch sizes, group counts)."""

    def __init__(self):
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum = 0

    def record(self, value: int) -> None:
        self.counts[value] = self.counts.get(value, 0) + 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    @property
    def max(self) -> int:
        return max(self.counts) if self.counts else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.total,
            "mean": round(self.mean, 3),
            "max": self.max,
            "histogram": {str(k): v for k, v in sorted(self.counts.items())},
        }


@dataclass
class EndpointMetrics:
    """Per-op request accounting."""

    requests: int = 0
    errors: int = 0
    shed: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "latency": self.latency.to_dict(),
        }


class ServeMetrics:
    """All service-side counters, grouped per endpoint plus batcher-wide."""

    def __init__(self):
        self.by_op: Dict[str, EndpointMetrics] = {}
        self.batch_sizes = Distribution()
        self.batch_groups = Distribution()
        self.batches = 0
        self.coalesced_requests = 0
        self.reloads = 0
        #: Reload attempts that failed to load (half-written directory,
        #: corrupt artifact) and were skipped — previously invisible.
        self.reload_failures = 0
        self.connections = 0
        # Calibration-loop counters (fed by repro.calibrate when a
        # Calibrator is attached to the service).
        self.observations = 0
        self.drift_alarms = 0
        self.promotions = 0
        self.rollbacks = 0
        # Search-backend counters (fed per optimize outcome by the
        # micro-batcher; per-backend breakdown plus two additive totals
        # that publish into the fleet stats block).
        self.search_evaluations = 0
        self.search_pruned = 0
        self.search_backends: Dict[str, Dict[str, int]] = {}
        # Pareto-frontier counters (fed per pareto outcome by the
        # micro-batcher; both additive, both published fleet-wide).
        self.frontiers = 0
        self.frontier_points = 0

    def endpoint(self, op: str) -> EndpointMetrics:
        if op not in self.by_op:
            self.by_op[op] = EndpointMetrics()
        return self.by_op[op]

    def record_request(
        self, op: str, seconds: float, error: bool = False, shed: bool = False
    ) -> None:
        endpoint = self.endpoint(op)
        endpoint.requests += 1
        if error:
            endpoint.errors += 1
        if shed:
            endpoint.shed += 1
        endpoint.latency.record(seconds)

    def record_search(self, stats) -> None:
        """Fold one optimize outcome's search stats (duck-typed
        :class:`repro.core.search.SearchStats`) into the counters."""
        if stats is None:
            return
        pruned = stats.pruned_candidates
        self.search_evaluations += stats.evaluations
        self.search_pruned += pruned
        entry = self.search_backends.setdefault(
            stats.backend or "unknown",
            {"runs": 0, "evaluations": 0, "pruned_candidates": 0, "exhausted": 0},
        )
        entry["runs"] += 1
        entry["evaluations"] += stats.evaluations
        entry["pruned_candidates"] += pruned
        entry["exhausted"] += int(stats.exhausted)

    def record_frontier(self, outcome) -> None:
        """Fold one pareto outcome (duck-typed
        :class:`repro.cost.pareto.FrontierOutcome`) into the counters."""
        if outcome is None:
            return
        self.frontiers += 1
        self.frontier_points += len(outcome.points)

    def record_batch(self, size: int, groups: int) -> None:
        self.batches += 1
        self.batch_sizes.record(size)
        self.batch_groups.record(groups)
        if size > 1:
            self.coalesced_requests += size

    @property
    def total_shed(self) -> int:
        return sum(e.shed for e in self.by_op.values())

    @property
    def total_requests(self) -> int:
        return sum(e.requests for e in self.by_op.values())

    @property
    def total_errors(self) -> int:
        return sum(e.errors for e in self.by_op.values())

    def fleet_counter_values(self) -> Tuple[int, ...]:
        """Integer values for :data:`FLEET_COUNTER_FIELDS`, in order.

        This is what a replica writes into its shared-memory stats row;
        each value is monotonically non-decreasing so a torn read (the
        supervisor sampling mid-update) only ever lags, never lies.
        """
        return (
            self.total_requests,
            self.total_errors,
            self.total_shed,
            self.batches,
            self.coalesced_requests,
            self.reloads,
            self.reload_failures,
            self.connections,
            self.observations,
            self.drift_alarms,
            self.promotions,
            self.rollbacks,
            self.search_evaluations,
            self.search_pruned,
            self.frontiers,
            self.frontier_points,
        )

    def aggregate_latency(self) -> LatencyHistogram:
        """One histogram folding every endpoint's latency together."""
        merged = LatencyHistogram()
        for endpoint in self.by_op.values():
            merged.merge(endpoint.latency)
        return merged

    def to_dict(
        self, cache: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "endpoints": {op: e.to_dict() for op, e in sorted(self.by_op.items())},
            "batches": {
                "dispatched": self.batches,
                "coalesced_requests": self.coalesced_requests,
                "sizes": self.batch_sizes.to_dict(),
                "groups": self.batch_groups.to_dict(),
            },
            "shed": self.total_shed,
            "reloads": self.reloads,
            "reload_failures": self.reload_failures,
            "connections": self.connections,
            "calibration": {
                "observations": self.observations,
                "drift_alarms": self.drift_alarms,
                "promotions": self.promotions,
                "rollbacks": self.rollbacks,
            },
            "search": {
                "evaluations": self.search_evaluations,
                "pruned_candidates": self.search_pruned,
                "backends": {
                    name: dict(entry)
                    for name, entry in sorted(self.search_backends.items())
                },
            },
            "frontier": {
                "frontiers": self.frontiers,
                "points": self.frontier_points,
            },
        }
        if cache is not None:
            payload["cache"] = cache
        return payload

    def describe(self) -> str:
        lines: List[str] = []
        for op, endpoint in sorted(self.by_op.items()):
            lines.append(
                f"{op:>9s}: {endpoint.requests} requests, "
                f"{endpoint.errors} errors, {endpoint.shed} shed, "
                f"mean {endpoint.latency.mean_ms:.2f} ms, "
                f"p99 <= {endpoint.latency.quantile_ms(0.99):.2f} ms"
            )
        lines.append(
            f"  batches: {self.batches} dispatched, "
            f"mean size {self.batch_sizes.mean:.2f}, max {self.batch_sizes.max}"
        )
        lines.append(
            f"  reloads: {self.reloads} swapped, {self.reload_failures} failed"
        )
        for name, entry in sorted(self.search_backends.items()):
            lines.append(
                f"  search[{name}]: {entry['runs']} runs, "
                f"{entry['evaluations']} evaluations, "
                f"{entry['pruned_candidates']} pruned, "
                f"{entry['exhausted']} budget-exhausted"
            )
        if self.frontiers:
            lines.append(
                f"  frontier: {self.frontiers} frontiers, "
                f"{self.frontier_points} points"
            )
        if self.observations:
            lines.append(
                f"  calibration: {self.observations} observations, "
                f"{self.drift_alarms} drift alarms, "
                f"{self.promotions} promotions, {self.rollbacks} rollbacks"
            )
        return "\n".join(lines)
