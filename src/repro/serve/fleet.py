"""Sharded multi-process serving fleet (scale-out over one port).

One :class:`FleetSupervisor` process owns the shared state; N replica
processes each run the existing single-process stack unchanged — an
:class:`~repro.serve.server.EstimationServer` + ``MicroBatcher`` +
``ModelRegistry`` — so every correctness property of PR 3 (bitwise
identity, graceful drain, typed shedding) holds per replica, and the
fleet adds only *placement*:

**Accept sharding.**  Where the OS supports ``SO_REUSEPORT`` (Linux),
every replica listens on the same ``(host, port)`` and the kernel
load-balances accepted connections — no userspace hop.  Elsewhere (or
with ``listener="router"``) replicas listen on private ports and a
lightweight asyncio byte-splicing router round-robins accepted
connections across them.

**Zero-copy artifacts.**  The supervisor packs each served pipeline
directory into one :class:`~repro.serve.shared.ArtifactSegment`
(artifact bytes + coefficient array + panel-table geometry) and workers
attach: N replicas pay ~1x artifact load cost (the supervisor's single
pack validates everything) and share one physical copy of the packed
pages.

**Two-phase promotion.**  :meth:`FleetSupervisor.promote` — the same
``(name, directory)`` signature as :meth:`ModelRegistry.promote`, so a
:class:`~repro.calibrate.manager.Calibrator` drives a whole fleet
exactly as it drives one registry — packs the candidate once, then:

1. *prepare*: every replica attaches the new segment and fully builds +
   bitwise-verifies its entry **beside** the live one;
2. *commit*: only after **all** replicas acked prepare, each installs
   the staged entry (one dict assignment on its event loop).

A replica therefore never serves a mix: before its commit it answers
with the old fingerprint, after with the new — and because every
replica had the candidate staged before *any* committed, the fleet
window where old and new answers coexist is bounded by one in-flight
batch per replica, each reply self-labeled by its ``fingerprint``
field.  A prepare failure on any replica aborts the transaction with
every replica still serving the old generation.

**Crash resilience.**  A monitor thread watches worker sentinels and
respawns dead replicas (new epoch, restart counted in the shared stats
block); the survivors keep accepting the whole time.

**Fleet stats.**  Each replica publishes its counters into a
:class:`~repro.serve.shared.FleetStatsBlock` row a few times per
second; any replica answers the ``fleet_status`` op by aggregating the
block, so one client connection sees the whole fleet.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import multiprocessing.connection
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.perf.parallel import default_worker_count
from repro.serve.shared import (
    ArtifactSegment,
    FleetStatsBlock,
    pack_pipeline_segment,
    seed_from_segment,
)

#: Default cap on auto-sized fleets (``workers=0``): beyond the CPU
#: count there is nothing left to shard.
MAX_AUTO_WORKERS = 16


def reuse_port_supported() -> bool:
    """Whether this OS can shard one listening port across processes."""
    return hasattr(socket, "SO_REUSEPORT")


@dataclass
class FleetConfig:
    """Knobs of a serving fleet (everything else inherits the
    single-process server defaults)."""

    workers: int = 0  #: 0 = one per available CPU (affinity/cgroup-aware)
    host: str = "127.0.0.1"
    port: int = 0  #: 0 = pick an ephemeral port
    listener: str = "auto"  #: ``auto`` | ``reuseport`` | ``router``
    max_pending: int = 256
    max_batch: int = 64
    batch_window_s: float = 0.002
    cache_capacity: Optional[int] = 4096
    stats_interval_s: float = 0.2
    ready_timeout_s: float = 60.0
    promote_timeout_s: float = 60.0
    drain_timeout_s: float = 30.0
    #: ``fork`` shares the parent's page cache and resource tracker
    #: (preferred); ``spawn`` is the portable fallback.
    start_method: str = field(
        default_factory=lambda: (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
    )

    def resolve_listener(self) -> str:
        if self.listener == "auto":
            return "reuseport" if reuse_port_supported() else "router"
        if self.listener not in ("reuseport", "router"):
            raise ReproError(
                f"unknown listener mode {self.listener!r} "
                f"(want auto, reuseport or router)"
            )
        if self.listener == "reuseport" and not reuse_port_supported():
            raise ReproError("this platform has no SO_REUSEPORT; use listener='router'")
        return self.listener

    def resolve_workers(self) -> int:
        if self.workers < 0:
            raise ReproError(f"workers must be >= 0, got {self.workers}")
        if self.workers == 0:
            return default_worker_count(cap=MAX_AUTO_WORKERS)
        return self.workers


# -- worker process ------------------------------------------------------------


class _WorkerFleetView:
    """The replica-side answerer of the ``fleet_status`` op."""

    def __init__(
        self, block: FleetStatsBlock, index: int, listener: str, port: int, publish=None
    ):
        self.block = block
        self.index = index
        self.listener = listener
        self.port = port
        self.publish = publish

    def status(self) -> Dict[str, object]:
        if self.publish is not None:
            self.publish()  # freshen this replica's own row; peers lag
            # by at most one stats interval
        status = self.block.aggregate()
        status.update(
            {
                "fleet": True,
                "listener": self.listener,
                "port": self.port,
                "answered_by": self.index,
            }
        )
        return status


async def _worker_async(
    index: int,
    epoch: int,
    config: FleetConfig,
    listener: str,
    segments: Dict[str, str],
    stats_name: str,
    conn,
) -> None:
    # Local import: keep module import light for the spawn start method.
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import EstimationServer

    untrack = config.start_method == "spawn"
    block = FleetStatsBlock.attach(stats_name, untrack=untrack)
    # Segments stay attached (never closed) for the process lifetime:
    # served panel tables are zero-copy views into them, and a staged
    # promotion may be referenced by in-flight batches after commit.
    attached: List[ArtifactSegment] = []
    registry = ModelRegistry(cache_capacity=config.cache_capacity)
    for name in sorted(segments):
        segment = ArtifactSegment.attach(segments[name], untrack=untrack)
        attached.append(segment)
        registry.add_shared(name, segment)
        seed_from_segment(segment)

    reuseport = listener == "reuseport"
    server = EstimationServer(
        registry,
        host=config.host,
        port=config.port if reuseport else 0,
        max_pending=config.max_pending,
        max_batch=config.max_batch,
        batch_window_s=config.batch_window_s,
        refresh_interval_s=None,  # shared entries never watch disk
        reuse_port=reuseport,
    )
    host, port = await server.start()

    def publish() -> None:
        metrics = server.metrics
        hist = metrics.aggregate_latency()
        block.publish(
            index,
            pid=os.getpid(),
            port=port,
            epoch=epoch,
            heartbeat_us=int(time.monotonic() * 1e6),
            counters=metrics.fleet_counter_values(),
            latency_counts=hist.counts,
            latency_sum_us=int(hist.sum_ms * 1e3),
            latency_max_us=int(hist.max_ms * 1e3),
            cache=registry.aggregate_cache_stats().as_tuple(),
        )

    server.fleet = _WorkerFleetView(
        block, index, listener, config.port or port, publish=publish
    )
    publish()
    conn.send(("ready", index, port, os.getpid()))

    loop = asyncio.get_running_loop()
    control: asyncio.Queue = asyncio.Queue()

    def on_control_readable() -> None:
        try:
            control.put_nowait(conn.recv())
        except (EOFError, OSError):  # supervisor went away; drain below
            loop.remove_reader(conn.fileno())
            control.put_nowait(("drain",))

    loop.add_reader(conn.fileno(), on_control_readable)

    staged: Dict[int, Tuple[str, object]] = {}
    draining = False
    get: Optional[asyncio.Task] = None
    while not draining:
        # Keep one pending get() across timeouts instead of
        # cancel-and-recreate: a cancelled Queue.get can eat an item.
        if get is None:
            get = loop.create_task(control.get())
        done, _ = await asyncio.wait({get}, timeout=config.stats_interval_s)
        if not done:
            publish()
            continue
        message = get.result()
        get = None
        kind = message[0]
        if kind == "prepare":
            _, txn, name, segment_name = message
            try:
                segment = ArtifactSegment.attach(segment_name, untrack=untrack)
                attached.append(segment)
                entry = registry.entry_from_segment(name, segment)
                staged[txn] = (name, entry)
                conn.send(("prepared", index, txn, None))
            except Exception as exc:  # the supervisor aborts the txn
                conn.send(("prepared", index, txn, f"{type(exc).__name__}: {exc}"))
        elif kind == "commit":
            _, txn = message
            name, entry = staged.pop(txn)
            # One dict assignment on the event loop: in-flight batches
            # keep the old entry, no later request sees it.
            registry.install_entry(entry)
            server.metrics.promotions += 1
            publish()
            conn.send(("committed", index, txn, entry.fingerprint))
        elif kind == "abort":
            _, txn = message
            staged.pop(txn, None)
            conn.send(("aborted", index, txn))
        elif kind == "drain":
            draining = True
        else:  # pragma: no cover - protocol drift guard
            conn.send(("error", index, f"unknown control message {kind!r}"))

    if get is not None:
        get.cancel()
    try:
        loop.remove_reader(conn.fileno())
    except (OSError, ValueError):  # already removed on EOF
        pass
    await server.shutdown()
    publish()
    block.mark_detached(index)
    try:
        conn.send(("drained", index, server.metrics.total_requests))
    except (OSError, BrokenPipeError):  # supervisor already gone
        pass


def _worker_main(
    index: int,
    epoch: int,
    config: FleetConfig,
    listener: str,
    segments: Dict[str, str],
    stats_name: str,
    conn,
) -> None:
    # The supervisor owns SIGINT (Ctrl-C drains the whole fleet in
    # order); replicas must not die out from under it.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    asyncio.run(
        _worker_async(index, epoch, config, listener, segments, stats_name, conn)
    )


# -- front router (fallback listener) ------------------------------------------


class _FrontRouter:
    """Round-robin TCP splicer for platforms without ``SO_REUSEPORT``.

    Runs its own event loop in a daemon thread; each accepted connection
    is pinned to one backend replica for its lifetime (the JSON-lines
    protocol is connection-oriented), successive connections rotate.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._backends: List[Tuple[str, int]] = []
        self._next = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def set_backends(self, backends: List[Tuple[str, int]]) -> None:
        loop = self._loop

        def update() -> None:
            self._backends = list(backends)

        if loop is not None:
            loop.call_soon_threadsafe(update)
        else:
            update()

    def start(self, backends: List[Tuple[str, int]]) -> Tuple[str, int]:
        self._backends = list(backends)
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet-router", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise ReproError(f"fleet router failed to start: {self._error}")
        if not self._ready.is_set():
            raise ReproError("fleet router did not come up within 30s")
        return (self.host, self.port)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # pragma: no cover - surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = self._loop.create_future()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop
        # Pumps hold their own sockets; closing the listener is enough
        # for shutdown — the supervisor drains replicas afterwards.

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if not self._backends:
            writer.close()
            return
        backend = self._backends[self._next % len(self._backends)]
        self._next += 1
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(*backend)
        except OSError:
            writer.close()
            return

        async def pump(src: asyncio.StreamReader, dst: asyncio.StreamWriter) -> None:
            try:
                while True:
                    data = await src.read(65536)
                    if not data:
                        break
                    dst.write(data)
                    await dst.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                try:
                    dst.close()
                except RuntimeError:
                    pass

        await asyncio.gather(
            pump(reader, upstream_writer), pump(upstream_reader, writer)
        )

    def stop(self) -> None:
        loop, stop = self._loop, getattr(self, "_stop", None)
        if loop is not None and stop is not None:

            def finish() -> None:
                if not stop.done():
                    stop.set_result(None)

            loop.call_soon_threadsafe(finish)
        if self._thread is not None:
            self._thread.join(timeout=10.0)


# -- supervisor ----------------------------------------------------------------


@dataclass
class _Worker:
    index: int
    epoch: int
    process: multiprocessing.process.BaseProcess
    conn: object  #: supervisor end of the control pipe
    port: int = 0
    draining: bool = False

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class FleetSupervisor:
    """Owns the shared segments, the stats block, and N replicas."""

    def __init__(
        self,
        pipelines: Mapping[str, Path | str],
        config: Optional[FleetConfig] = None,
    ):
        if not pipelines:
            raise ReproError("a fleet needs at least one pipeline to serve")
        self.pipelines: Dict[str, Path] = {
            name: Path(directory) for name, directory in pipelines.items()
        }
        self.config = config or FleetConfig()
        self.listener = self.config.resolve_listener()
        self.workers = self.config.resolve_workers()
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._segments: Dict[str, ArtifactSegment] = {}
        self._retired_segments: List[ArtifactSegment] = []
        self._block: Optional[FleetStatsBlock] = None
        self._workers: List[_Worker] = []
        self._router: Optional[_FrontRouter] = None
        self._reserve_socket: Optional[socket.socket] = None
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._lock = threading.RLock()
        self._txn = 0
        self._started = False
        self.host = self.config.host
        self.port = self.config.port

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Pack, spawn, and wait for every replica; returns the public
        ``(host, port)`` clients should connect to."""
        if self._started:
            raise ReproError("fleet already started")
        self._started = True
        for name, directory in self.pipelines.items():
            self._segments[name] = pack_pipeline_segment(directory)
        self._block = FleetStatsBlock.create(self.workers)

        if self.listener == "reuseport":
            # Reserve the port for the fleet's lifetime with a bound,
            # non-listening SO_REUSEPORT socket: replicas (re)bind it
            # freely, nothing else on the host can take it, and a full
            # respawn can never lose it.
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self.port))
            self.port = sock.getsockname()[1]
            self.config = _replace_port(self.config, self.port)
            self._reserve_socket = sock

        with self._lock:
            for index in range(self.workers):
                self._spawn(index, epoch=1)
            self._await_ready(range(self.workers))

        if self.listener == "router":
            self._router = _FrontRouter(self.host, self.port)
            _, self.port = self._router.start(self._backend_addresses())

        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()
        return (self.host, self.port)

    def _spawn(self, index: int, epoch: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                epoch,
                self.config,
                self.listener,
                {name: seg.name for name, seg in self._segments.items()},
                self._block.name,
                child_conn,
            ),
            name=f"repro-serve-worker-{index}",
            daemon=True,  # never outlive a crashed supervisor
        )
        process.start()
        child_conn.close()
        if index < len(self._workers):
            self._workers[index] = _Worker(index, epoch, process, parent_conn)
        else:
            self._workers.append(_Worker(index, epoch, process, parent_conn))

    def _await_ready(self, indexes) -> None:
        deadline = time.monotonic() + self.config.ready_timeout_s
        for index in indexes:
            worker = self._workers[index]
            message = self._recv(worker, deadline, expected="ready")
            worker.port = int(message[2])

    def _recv(self, worker: _Worker, deadline: float, expected: str):
        """One control reply from ``worker``, or raise on timeout/death."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ReproError(
                    f"fleet worker {worker.index} sent no {expected!r} "
                    f"within {self.config.ready_timeout_s}s"
                )
            if worker.conn.poll(min(remaining, 0.1)):
                message = worker.conn.recv()
                if message[0] == expected:
                    return message
                continue  # stale message from a previous phase
            if not worker.alive:
                raise ReproError(
                    f"fleet worker {worker.index} died before sending "
                    f"{expected!r} (exit code {worker.process.exitcode})"
                )

    def _backend_addresses(self) -> List[Tuple[str, int]]:
        return [
            (self.host, worker.port) for worker in self._workers if worker.alive
        ]

    # -- crash monitor -------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.is_set():
            with self._lock:
                dead = [
                    worker
                    for worker in self._workers
                    if not worker.alive and not worker.draining
                ]
                for worker in dead:
                    self._block.bump_restart(worker.index)
                    try:
                        self._spawn(worker.index, epoch=worker.epoch + 1)
                        self._await_ready([worker.index])
                    except ReproError:
                        continue  # retried on the next monitor pass
                if dead and self._router is not None:
                    self._router.set_backends(self._backend_addresses())
            sentinels = [
                worker.process.sentinel
                for worker in self._workers
                if worker.alive and not worker.draining
            ]
            if sentinels:
                multiprocessing.connection.wait(sentinels, timeout=0.5)
            else:
                self._monitor_stop.wait(0.5)

    # -- promotion (two-phase) -----------------------------------------------

    def promote(self, name: str, directory: Path | str) -> Dict[str, object]:
        """Fan a model promotion out to every replica, atomically per
        replica and all-or-nothing across the fleet.

        Same signature as :meth:`ModelRegistry.promote`, so a
        :class:`~repro.calibrate.manager.Calibrator` given a fleet
        supervisor as its ``registry`` promotes all replicas at once.
        See the module docstring for the two-phase protocol.
        """
        if name not in self._segments:
            raise ReproError(
                f"no pipeline named {name!r} "
                f"(serving: {', '.join(sorted(self._segments)) or '(none)'})"
            )
        segment = pack_pipeline_segment(directory)
        with self._lock:
            self._txn += 1
            txn = self._txn
            live = [worker for worker in self._workers if worker.alive]
            deadline = time.monotonic() + self.config.promote_timeout_s

            # Phase 1 — prepare: every replica must stage and verify the
            # candidate before any replica is told to serve it.
            try:
                failures: List[str] = []
                for worker in live:
                    try:
                        worker.conn.send(("prepare", txn, name, segment.name))
                    except OSError as exc:
                        failures.append(f"worker {worker.index}: {exc}")
                for worker in live:
                    try:
                        message = self._recv(worker, deadline, expected="prepared")
                    except ReproError as exc:
                        failures.append(str(exc))
                        continue
                    if message[3] is not None:
                        failures.append(f"worker {worker.index}: {message[3]}")
                if failures:
                    raise ReproError(
                        "fleet promotion aborted in prepare: " + "; ".join(failures)
                    )
            except ReproError:
                for worker in live:
                    if worker.alive:
                        try:
                            worker.conn.send(("abort", txn))
                        except OSError:
                            pass
                segment.close()
                segment.unlink()
                raise

            # Phase 2 — commit: the transaction is decided.  A replica
            # dying here is not a rollback (its respawn attaches the new
            # segment map below); the survivors all swap.
            committed = 0
            for worker in live:
                try:
                    worker.conn.send(("commit", txn))
                    self._recv(worker, deadline, expected="committed")
                    committed += 1
                except (ReproError, OSError):
                    continue
            old = self._segments[name]
            self._segments[name] = segment
            # Replicas keep the old segment attached (in-flight batches
            # may still hold views); unlink so the memory is reclaimed
            # when the last replica exits.
            self._retired_segments.append(old)
            old.unlink()
        return {
            "pipeline": name,
            "fingerprint": segment.meta.get("fingerprint"),
            "directory": str(directory),
            "replicas": committed,
            "txn": txn,
        }

    # -- introspection ---------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """Supervisor-side fleet rollup (same shape as the op reply)."""
        status = self._block.aggregate()
        status.update(
            {
                "fleet": True,
                "listener": self.listener,
                "port": self.port,
                "pipelines": {
                    name: seg.meta.get("fingerprint")
                    for name, seg in sorted(self._segments.items())
                },
            }
        )
        return status

    def worker_pids(self) -> List[int]:
        return [worker.process.pid for worker in self._workers if worker.alive]

    def kill_worker(self, index: int) -> int:
        """Hard-kill one replica (crash-resilience tests); returns its pid."""
        worker = self._workers[index]
        pid = worker.process.pid
        worker.process.kill()
        worker.process.join(timeout=10.0)
        return pid

    # -- shutdown --------------------------------------------------------------

    def shutdown(self) -> None:
        """Drain every replica, stop the router/monitor, release shm."""
        if not self._started:
            return
        self._monitor_stop.set()
        with self._lock:
            for worker in self._workers:
                worker.draining = True
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
        deadline = time.monotonic() + self.config.drain_timeout_s
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                worker.conn.send(("drain",))
                self._recv(worker, deadline, expected="drained")
            except (ReproError, OSError, EOFError):
                pass
            worker.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.alive:
                worker.process.terminate()
                worker.process.join(timeout=5.0)
        if self._router is not None:
            self._router.stop()
        if self._reserve_socket is not None:
            self._reserve_socket.close()
        for segment in list(self._segments.values()) + self._retired_segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        if self._block is not None:
            self._block.close()
            self._block.unlink()
        self._started = False

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _replace_port(config: FleetConfig, port: int) -> FleetConfig:
    from dataclasses import replace

    return replace(config, port=port)


__all__ = [
    "FleetConfig",
    "FleetSupervisor",
    "MAX_AUTO_WORKERS",
    "reuse_port_supported",
]
