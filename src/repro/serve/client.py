"""Clients for the estimation service.

:class:`ServeClient` is the synchronous, stdlib-socket client used by
``repro client`` and by smoke tests — one connection, blocking
request/reply, no event loop required.  :func:`fire_concurrent` is the
asyncio load generator used by the throughput bench and the CI smoke:
``concurrency`` closed-loop workers, each with its own connection,
pumping a shared request list through the service.

Error replies raise :class:`ServeReplyError`, which keeps the typed
error payload — an ``Overloaded`` rejection is ``exc.error_type ==
"Overloaded"`` with a ``retry_after_ms`` hint, not an opaque failure.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.serve.protocol import decode_reply


class ServeReplyError(ReproError):
    """The service answered ``ok: false``; carries the typed error."""

    def __init__(self, error: Dict[str, object]):
        super().__init__(str(error.get("message", "request failed")))
        self.error_type = str(error.get("type", "Internal"))
        self.error = error

    @property
    def is_overloaded(self) -> bool:
        return self.error_type == "Overloaded"


def _raise_or_result(reply: dict) -> dict:
    if not reply.get("ok"):
        raise ServeReplyError(reply.get("error") or {})
    return reply["result"]


class ServeClient:
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7453, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing -----------------------------------------------------------

    def request(self, op: str, **params) -> dict:
        """Send one request, block for its reply, return the raw reply."""
        self._next_id += 1
        payload = {"id": self._next_id, "op": op}
        payload.update({k: v for k, v in params.items() if v is not None})
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ReproError("server closed the connection")
        return decode_reply(line.decode("utf-8"))

    # -- typed ops ----------------------------------------------------------

    def estimate(
        self, pipeline: str, config: Sequence[int], ns: Sequence[int]
    ) -> dict:
        return _raise_or_result(
            self.request(
                "estimate", pipeline=pipeline, config=list(config), ns=list(ns)
            )
        )

    def optimize(
        self,
        pipeline: str,
        n: int,
        top: int = 10,
        max_cost: Optional[float] = None,
        objective: Optional[str] = None,
    ) -> dict:
        return _raise_or_result(
            self.request(
                "optimize", pipeline=pipeline, n=n, top=top,
                max_cost=max_cost, objective=objective,
            )
        )

    def pareto(
        self,
        pipeline: str,
        ns: Sequence[int],
        budget: Optional[int] = None,
        max_cost: Optional[float] = None,
    ) -> dict:
        return _raise_or_result(
            self.request(
                "pareto", pipeline=pipeline, ns=list(ns),
                budget=budget, max_cost=max_cost,
            )
        )

    def whatif(self, config: Sequence[int], ns: Sequence[int]) -> dict:
        return _raise_or_result(
            self.request("whatif", config=list(config), ns=list(ns))
        )

    def models(self, pipeline: str) -> dict:
        return _raise_or_result(self.request("models", pipeline=pipeline))

    def stats(self) -> dict:
        return _raise_or_result(self.request("stats"))

    def reload(self, force: bool = False) -> dict:
        return _raise_or_result(self.request("reload", force=force or None))

    def ping(self) -> dict:
        return _raise_or_result(self.request("ping"))

    def fleet_status(self) -> dict:
        return _raise_or_result(self.request("fleet_status"))


async def fire_concurrent(
    host: str,
    port: int,
    payloads: Sequence[dict],
    concurrency: int,
) -> Tuple[List[dict], float]:
    """Closed-loop load generation: ``concurrency`` workers, each with its
    own connection, draining a shared request list.  Returns
    ``(replies aligned with payloads, wall seconds)``."""
    loop = asyncio.get_running_loop()
    replies: List[Optional[dict]] = [None] * len(payloads)
    next_index = 0

    async def worker() -> None:
        nonlocal next_index
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                if next_index >= len(payloads):
                    return
                index = next_index
                next_index += 1
                payload = dict(payloads[index])
                payload.setdefault("id", index)
                writer.write(json.dumps(payload).encode("utf-8") + b"\n")
                await writer.drain()
                line = await reader.readline()
                if not line:
                    raise ReproError("server closed the connection mid-run")
                replies[index] = decode_reply(line.decode("utf-8"))
        finally:
            writer.close()

    started = loop.time()
    await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    elapsed = loop.time() - started
    return [reply for reply in replies if reply is not None], elapsed


async def fire_timed(
    host: str,
    port: int,
    payloads: Sequence[dict],
    concurrency: int,
) -> Tuple[List[dict], List[float], float]:
    """Like :func:`fire_concurrent`, additionally recording each
    request's wall latency (send -> reply) in seconds.

    Returns ``(replies, latencies, wall seconds)`` with replies and
    latencies aligned with ``payloads``.  The fleet scaling bench uses
    the latency list for p50/p99 reporting; the plain throughput paths
    keep :func:`fire_concurrent` so existing callers pay nothing new.
    """
    loop = asyncio.get_running_loop()
    replies: List[Optional[dict]] = [None] * len(payloads)
    latencies: List[float] = [0.0] * len(payloads)
    next_index = 0

    async def worker() -> None:
        nonlocal next_index
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                if next_index >= len(payloads):
                    return
                index = next_index
                next_index += 1
                payload = dict(payloads[index])
                payload.setdefault("id", index)
                sent = loop.time()
                writer.write(json.dumps(payload).encode("utf-8") + b"\n")
                await writer.drain()
                line = await reader.readline()
                if not line:
                    raise ReproError("server closed the connection mid-run")
                latencies[index] = loop.time() - sent
                replies[index] = decode_reply(line.decode("utf-8"))
        finally:
            writer.close()

    started = loop.time()
    await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    elapsed = loop.time() - started
    kept = [i for i, reply in enumerate(replies) if reply is not None]
    return (
        [replies[i] for i in kept],
        [latencies[i] for i in kept],
        elapsed,
    )
