"""The asyncio frontend: JSON-lines over TCP, graceful lifecycle.

:class:`EstimationServer` owns the socket, the per-connection read
loops, and the service lifecycle; everything model-shaped lives in the
registry and the batcher.  Per connection, every request line spawns its
own task, so a pipelining client gets genuinely concurrent handling (and
therefore micro-batching) over a single connection; replies carry the
request ``id`` because they may complete out of order.  Writes are
serialized per connection.

Ops route two ways:

* data plane (``estimate``/``optimize``/``whatif``) — through the
  :class:`~repro.serve.batcher.MicroBatcher` (bounded queue, typed
  ``Overloaded`` shedding);
* control plane (``models``/``stats``/``reload``/``ping``) — answered
  inline, *not* queued, so health checks and reloads keep working while
  the data plane is saturated.

**Graceful shutdown** (:meth:`shutdown`) runs in strict order: stop
accepting connections, refuse new request lines (typed ``ShuttingDown``
replies), wait for every admitted request's handler task, drain the
batcher's in-flight work, then close the connections.  Nothing admitted
is ever dropped.

**Hot reload** is a periodic :meth:`ModelRegistry.refresh` task (plus
the explicit ``reload`` op); see :mod:`repro.serve.registry` for the
swap semantics.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Set, Tuple

from repro.errors import ReproError
from repro.measure.record import MeasurementRecord
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    BATCHED_OPS,
    ERROR_SHUTTING_DOWN,
    ProtocolError,
    Request,
    encode_error,
    encode_exception,
    encode_ok,
    parse_request,
)
from repro.serve.registry import ModelRegistry


def _recover_id(text: str):
    """Best-effort request id of an unparseable line, for the error reply."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    return payload.get("id") if isinstance(payload, dict) else None


class EstimationServer:
    """One serving process: socket + batcher + registry + metrics."""

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 256,
        max_batch: int = 64,
        batch_window_s: float = 0.002,
        refresh_interval_s: Optional[float] = 0.5,
        calibrators: Optional[Dict[str, object]] = None,
        reuse_port: bool = False,
        fleet: Optional[object] = None,
    ):
        self.registry = registry
        self.host = host
        self.port = port
        #: Bind with ``SO_REUSEPORT`` so sibling replicas can share the
        #: port (the kernel load-balances accepted connections).
        self.reuse_port = reuse_port
        #: Duck-typed fleet view (``status() -> dict``) answering the
        #: ``fleet_status`` op; ``None`` outside a fleet.
        self.fleet = fleet
        self.metrics = ServeMetrics()
        # The registry mirrors reload failures into the service metrics
        # (satellite of the calibration loop: failed swaps are counted,
        # not silently skipped).
        if registry.metrics is None:
            registry.metrics = self.metrics
        #: pipeline name -> :class:`repro.calibrate.Calibrator` (duck-typed
        #: here so the serve layer never imports the calibrate package).
        self.calibrators: Dict[str, object] = dict(calibrators or {})
        for calibrator in self.calibrators.values():
            if getattr(calibrator, "metrics", None) is None:
                calibrator.metrics = self.metrics
        self.batcher = MicroBatcher(
            registry,
            metrics=self.metrics,
            max_pending=max_pending,
            max_batch=max_batch,
            batch_window_s=batch_window_s,
        )
        self.refresh_interval_s = refresh_interval_s
        self._server: Optional[asyncio.Server] = None
        self._refresh_task: Optional[asyncio.Task] = None
        self._request_tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._draining = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``
        (useful with ``port=0``)."""
        self.batcher.start()
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        if self.refresh_interval_s:
            self._refresh_task = asyncio.get_running_loop().create_task(
                self._refresh_loop()
            )
        return (self.host, self.port)

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    async def shutdown(self) -> None:
        """Graceful stop: see module docstring for the ordering."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._refresh_task is not None:
            self._refresh_task.cancel()
            try:
                await self._refresh_task
            except asyncio.CancelledError:
                pass
        # Admitted requests finish: their tasks await batcher futures,
        # which resolve as the drain empties the queue.
        drain = asyncio.get_running_loop().create_task(
            self.batcher.drain_and_stop()
        )
        if self._request_tasks:
            await asyncio.gather(*self._request_tasks, return_exceptions=True)
        await drain
        for writer in list(self._writers):
            writer.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def _refresh_loop(self) -> None:
        while True:
            await asyncio.sleep(self.refresh_interval_s)
            swapped = self.registry.refresh()
            if swapped:
                self.metrics.reloads += len(swapped)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections += 1
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(text, writer, write_lock)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _serve_line(
        self, text: str, writer: asyncio.StreamWriter, lock: asyncio.Lock
    ) -> None:
        started = time.perf_counter()
        op = "invalid"
        error = False
        shed = False
        request_id = _recover_id(text)
        try:
            request = parse_request(text)
            op = request.op
            request_id = request.id
            if self._draining:
                raise ProtocolError("service is shutting down", ERROR_SHUTTING_DOWN)
            reply = await self._dispatch(request)
        except Exception as exc:
            error = True
            shed = getattr(exc, "error_type", "") == "Overloaded"
            reply = encode_exception(request_id, exc)
        await self._write(reply, writer, lock)
        self.metrics.record_request(
            op, time.perf_counter() - started, error=error, shed=shed
        )

    async def _write(
        self, reply: str, writer: asyncio.StreamWriter, lock: asyncio.Lock
    ) -> None:
        async with lock:
            try:
                writer.write(reply.encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionResetError, RuntimeError):
                pass  # client went away; nothing to tell it

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(self, request: Request) -> str:
        if request.op in BATCHED_OPS:
            future = self.batcher.submit(request)
            result = await future
            return encode_ok(request.id, result)
        if request.op == "models":
            entry = self.registry.get(request.pipeline)
            return encode_ok(request.id, entry.model_inventory())
        if request.op == "stats":
            return encode_ok(
                request.id, self.metrics.to_dict(cache=self.registry.snapshot())
            )
        if request.op == "reload":
            swapped = self.registry.refresh(force=bool(request.params.get("force")))
            self.metrics.reloads += len(swapped)
            return encode_ok(
                request.id,
                {
                    "reloaded": swapped,
                    "checked": len(self.registry),
                    "errors": [
                        {"pipeline": name, "error": text}
                        for name, text in self.registry.last_reload_errors
                    ],
                },
            )
        if request.op == "ping":
            return encode_ok(
                request.id, {"pong": True, "pipelines": self.registry.names()}
            )
        if request.op == "observe":
            return encode_ok(request.id, self._observe(request))
        if request.op == "calibration":
            return encode_ok(request.id, self._calibration_status(request))
        if request.op == "fleet_status":
            if self.fleet is None:
                raise ProtocolError(
                    "this server is not part of a fleet "
                    "(start with 'repro serve --workers N')"
                )
            return encode_ok(request.id, self.fleet.status())
        return encode_error(request.id, "BadRequest", f"unhandled op {request.op!r}")

    # -- calibration ops ----------------------------------------------------

    def _calibrator_for(self, name: str):
        self.registry.get(name)  # UnknownPipeline for unserved names
        calibrator = self.calibrators.get(name)
        if calibrator is None:
            enabled = ", ".join(sorted(self.calibrators)) or "(none)"
            raise ProtocolError(
                f"pipeline {name!r} has no calibration loop attached "
                f"(calibrating: {enabled})"
            )
        return calibrator

    def _observe(self, request: Request) -> dict:
        """Ingest one observed run into the pipeline's calibration loop."""
        calibrator = self._calibrator_for(request.pipeline)
        try:
            record = MeasurementRecord.from_dict(request.params["record"])
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed 'record': {exc}") from exc
        source = request.params.get("source", "serve")
        if not isinstance(source, str):
            raise ProtocolError("'source' must be a string")
        return calibrator.ingest(record, source=source).to_dict()

    def _calibration_status(self, request: Request) -> dict:
        """Status of one calibration loop, or of all of them."""
        if request.pipeline is not None:
            return self._calibrator_for(request.pipeline).status()
        return {
            "pipelines": {
                name: calibrator.status()
                for name, calibrator in sorted(self.calibrators.items())
            }
        }
