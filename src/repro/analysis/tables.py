"""Plain-text and markdown table rendering for reports and benches."""

from __future__ import annotations

from typing import List, Optional, Sequence


def _stringify(rows: Sequence[Sequence[object]]) -> List[List[str]]:
    return [[str(cell) for cell in row] for row in rows]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table (right-aligned numbers look fine because all
    cells are padded to the column width)."""
    str_rows = _stringify(rows)
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """GitHub-flavored markdown table."""
    str_rows = _stringify(rows)
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers: {row}"
            )
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    out.extend("| " + " | ".join(row) + " |" for row in str_rows)
    return "\n".join(out)
