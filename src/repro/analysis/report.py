"""Full experiment reports: one protocol run rendered as text.

:func:`protocol_report` runs (or reuses) a pipeline and renders everything
the paper reports for that protocol: measurement cost, model inventory,
adjustment, the verification table and per-size correlation quality.  The
benches write these to ``benchmarks/results/`` and EXPERIMENTS.md quotes
them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.correlation import correlation_data
from repro.analysis.errors import EVALUATION_HEADERS, evaluation_rows
from repro.analysis.tables import render_table
from repro.core.pipeline import EstimationPipeline
from repro.units import pretty_seconds


def cost_table(pipeline: EstimationPipeline) -> str:
    """The paper's Table 3/6 analog: measurement seconds per kind per N."""
    campaign = pipeline.campaign
    kinds = list(pipeline.plan.kinds)
    rows = []
    for n in pipeline.plan.construction_sizes:
        rows.append(
            [n] + [f"{campaign.cost_for_n(kind, n):.1f}" for kind in kinds]
        )
    rows.append(
        ["Total"] + [f"{campaign.cost_for_kind(kind):.1f}" for kind in kinds]
    )
    return render_table(
        ["Size N"] + [f"{kind} [sec]" for kind in kinds],
        rows,
        title=f"Measurement cost ({pipeline.plan.name} model construction)",
    )


def verification_table(
    pipeline: EstimationPipeline, sizes: Optional[Sequence[int]] = None
) -> str:
    """The paper's Table 4/7/9 analog."""
    rows = [row.as_cells(pipeline.plan.kinds) for row in evaluation_rows(pipeline, sizes)]
    return render_table(
        EVALUATION_HEADERS,
        rows,
        title=(
            f"Errors in estimated best configurations after adjustment "
            f"({pipeline.plan.name} model)"
        ),
    )


def correlation_summary(
    pipeline: EstimationPipeline, sizes: Optional[Sequence[int]] = None
) -> str:
    """Per-size correlation quality, raw and adjusted."""
    selected = sizes if sizes is not None else pipeline.plan.evaluation_sizes
    rows = []
    for n in selected:
        data = correlation_data(pipeline, int(n))
        rows.append(
            [
                n,
                f"{data.r_squared(adjusted=False):.4f}",
                f"{data.r_squared(adjusted=True):.4f}",
                f"{data.mean_abs_deviation(adjusted=False):.3f}",
                f"{data.mean_abs_deviation(adjusted=True):.3f}",
                f"{data.systematic_slope(adjusted=True):.3f}",
            ]
        )
    return render_table(
        ["N", "R2 raw", "R2 adj", "mean|dev| raw", "mean|dev| adj", "slope adj"],
        rows,
        title=f"Estimate-vs-measurement correlation ({pipeline.plan.name} model)",
    )


def protocol_report(pipeline: EstimationPipeline) -> str:
    """Everything the paper reports for one protocol, as one document."""
    campaign = pipeline.campaign
    sections: List[str] = []
    sections.append(
        f"=== Protocol {pipeline.plan.name!r} on cluster {pipeline.spec.name!r} "
        f"(seed {pipeline.config.seed}) ==="
    )
    sections.append(pipeline.spec.describe())
    sections.append(
        f"Construction: {pipeline.plan.construction_count} measurements, "
        f"simulated cost {pretty_seconds(campaign.total_cost_s)} "
        f"({campaign.total_cost_s:.0f} s)"
    )
    sections.append(cost_table(pipeline))
    sections.append(pipeline.store.summary())
    if pipeline.composed_models:
        composed = ", ".join(
            f"{kind}: Mi={mis}" for kind, mis in sorted(pipeline.composed_models.items())
        )
        sections.append(f"Composed P-T models: {composed}")
    sections.append(f"Adjustment: {pipeline.adjustment.describe()}")
    sections.append(verification_table(pipeline))
    sections.append(correlation_summary(pipeline))
    from repro.analysis.decision import decision_table

    sections.append(decision_table(pipeline))
    return "\n\n".join(sections)
