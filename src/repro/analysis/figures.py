"""Data series of the paper's Figures 1-3 and terminal scatter rendering.

Each ``figN_series`` function returns labelled (x, y) series ready for any
plotting frontend; the benches print them as tables and the ASCII renderer
gives a quick visual in terminals (this library deliberately has no
plotting dependency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.correlation import CorrelationData
from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster, single_node_cluster
from repro.cluster.spec import ClusterSpec
from repro.hpl.driver import NoiseSpec, run_hpl_batch
from repro.simnet.mpich import mpich_1_2_1, mpich_1_2_2
from repro.simnet.netpipe import probe_link, standard_block_sizes
from repro.units import to_gbps


def _gflops_curve(spec, config, sizes, noise, seed) -> List[float]:
    """Gflops at each size, one batched simulation per configuration."""
    results = run_hpl_batch(
        spec, config, [int(n) for n in sizes], noise=noise, seed=seed
    )
    return [result.gflops for result in results]


@dataclass(frozen=True)
class Series:
    """One labelled curve."""

    label: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"{self.label}: x and y lengths differ")


FIG1_SIZES: Tuple[int, ...] = (1000, 2000, 3000, 4000, 5000, 6000, 7000)
FIG3_SIZES: Tuple[int, ...] = (1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000)


def fig1_series(
    mpich: str,
    sizes: Sequence[int] = FIG1_SIZES,
    max_procs: int = 4,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
) -> List[Series]:
    """Figure 1: single-Athlon HPL Gflops for n = 1..4 processes/CPU under
    one MPICH version (``"1.2.1"`` or ``"1.2.2"``)."""
    spec = single_node_cluster(mpich=mpich)
    out = []
    for procs in range(1, max_procs + 1):
        config = ClusterConfig.of(athlon=(1, procs))
        gflops = _gflops_curve(spec, config, sizes, noise, seed)
        out.append(Series(f"{procs}P/CPU", tuple(float(n) for n in sizes), tuple(gflops)))
    return out


def fig2_series(block_sizes: Optional[Sequence[float]] = None) -> List[Series]:
    """Figure 2: intra-node NetPIPE throughput (Gbit/s) vs block size (KB)
    for the two MPICH versions."""
    blocks = (
        np.asarray(block_sizes, dtype=float)
        if block_sizes is not None
        else standard_block_sizes()
    )
    out = []
    for version in (mpich_1_2_1(), mpich_1_2_2()):
        points = probe_link(version, blocks)
        out.append(
            Series(
                version.name,
                tuple(p.block_bytes / 1024.0 for p in points),
                tuple(to_gbps(p.throughput_bps) for p in points),
            )
        )
    return out


def fig3a_series(
    sizes: Sequence[int] = FIG3_SIZES,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    spec: Optional[ClusterSpec] = None,
) -> List[Series]:
    """Figure 3(a): load imbalance — Athlon x 1 vs P2 x 5 vs Ath + P2 x 4
    (equal distribution, one process per PE)."""
    cluster = spec if spec is not None else kishimoto_cluster()
    cases = {
        "Athlon x 1": ClusterConfig.of(athlon=(1, 1), pentium2=(0, 0)),
        "Ath x 1 + P2 x 4": ClusterConfig.of(athlon=(1, 1), pentium2=(4, 1)),
        "P2 x 5": ClusterConfig.of(athlon=(0, 0), pentium2=(5, 1)),
    }
    out = []
    for label, config in cases.items():
        gflops = _gflops_curve(cluster, config, sizes, noise, seed)
        out.append(Series(label, tuple(float(n) for n in sizes), tuple(gflops)))
    return out


def fig3b_series(
    sizes: Sequence[int] = FIG3_SIZES,
    max_procs: int = 4,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    spec: Optional[ClusterSpec] = None,
) -> List[Series]:
    """Figure 3(b): multiprocessing n = 1..4 on the Athlon alongside four
    Pentium-IIs, against the single Athlon."""
    cluster = spec if spec is not None else kishimoto_cluster()
    out = [
        Series(
            "Athlon x 1",
            tuple(float(n) for n in sizes),
            tuple(
                _gflops_curve(
                    cluster,
                    ClusterConfig.of(athlon=(1, 1), pentium2=(0, 0)),
                    sizes,
                    noise,
                    seed,
                )
            ),
        )
    ]
    for procs in range(1, max_procs + 1):
        config = ClusterConfig.of(athlon=(1, procs), pentium2=(4, 1))
        gflops = _gflops_curve(cluster, config, sizes, noise, seed)
        out.append(Series(f"n = {procs}", tuple(float(n) for n in sizes), tuple(gflops)))
    return out


# -- terminal rendering -----------------------------------------------------------


def series_table(series: Sequence[Series], x_label: str, y_format: str = "{:.3f}") -> str:
    """Tabulate several series sharing (approximately) the same x grid."""
    if not series:
        return "(no series)"
    xs = series[0].x
    lines = [x_label.rjust(8) + "  " + "  ".join(s.label.rjust(12) for s in series)]
    for i, x in enumerate(xs):
        cells = []
        for s in series:
            cells.append(
                y_format.format(s.y[i]).rjust(12) if i < len(s.y) else " " * 12
            )
        lines.append(f"{x:8.0f}  " + "  ".join(cells))
    return "\n".join(lines)


def ascii_scatter(
    data: CorrelationData,
    adjusted: bool = True,
    width: int = 56,
    height: int = 20,
) -> str:
    """Terminal scatter of estimate (x) vs measurement (y) with the
    diagonal marked ``.`` — the look of the paper's Figures 6-15."""
    if not data.points:
        return "(no points)"
    est = np.array(
        [p.estimate_adjusted if adjusted else p.estimate_raw for p in data.points]
    )
    meas = np.array([p.measured for p in data.points])
    groups = [p.group_mi for p in data.points]
    top = max(float(est.max()), float(meas.max())) * 1.05
    if top <= 0:
        return "(degenerate scatter)"
    grid = [[" "] * width for _ in range(height)]
    for row in range(height):
        frac = 1.0 - (row + 0.5) / height
        col = int(frac * (width - 1))
        grid[row][col] = "."
    for e, m, g in zip(est, meas, groups):
        col = min(int(e / top * (width - 1)), width - 1)
        row = min(int((1.0 - m / top) * (height - 1)), height - 1)
        grid[row][col] = str(g) if 0 <= g <= 9 else "#"
    lines = ["".join(r) + "|" for r in grid]
    lines.append("-" * width + "+")
    lines.append(
        f"x: estimate 0..{top:.0f}s, y: measurement (digits = M1 group, '.' = T=t)"
    )
    return "\n".join(lines)
