"""Analysis and reporting: the paper's tables and figures from pipelines.

* :mod:`repro.analysis.errors` — best-configuration error rows
  (Tables 4, 7, 9) from a pipeline.
* :mod:`repro.analysis.correlation` — estimate-vs-measurement scatter data
  (Figures 6-15) with goodness metrics.
* :mod:`repro.analysis.tables` — plain-text/markdown table rendering.
* :mod:`repro.analysis.figures` — the data series of Figures 1-3 and an
  ASCII scatter renderer for terminal output.
* :mod:`repro.analysis.report` — full experiment reports.
"""

from repro.analysis.correlation import CorrelationData, ScatterPoint, correlation_data
from repro.analysis.errors import EvaluationRow, evaluation_rows
from repro.analysis.tables import render_markdown_table, render_table

__all__ = [
    "CorrelationData",
    "EvaluationRow",
    "ScatterPoint",
    "correlation_data",
    "evaluation_rows",
    "render_markdown_table",
    "render_table",
]
