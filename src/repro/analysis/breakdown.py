"""Phase-breakdown diagnostics: where does a configuration's time go?

The paper's Figure 4 introduces HPL's timing items; this module renders
the simulated equivalent for any run — per-kind and per-process tables of
``pfact / mxswp / bcast / update / laswp / uptrsv`` with the paper's
``Ta``/``Tc`` groupings — the first thing to look at when an estimate and
a measurement disagree.  Exposed on the CLI as ``repro breakdown``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.tables import render_table
from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.hpl.driver import HPLResult, NoiseSpec, run_hpl
from repro.hpl.schedule import HPLParameters
from repro.hpl.timing import PHASE_NAMES


def kind_breakdown_table(result: HPLResult) -> str:
    """Per-kind mean phase times with Ta/Tc groupings."""
    rows = []
    for kind in result.kind_names():
        phases = result.kind_phases(kind)
        rows.append(
            [kind]
            + [f"{getattr(phases, name):.2f}" for name in PHASE_NAMES]
            + [f"{phases.ta:.2f}", f"{phases.tc:.2f}", f"{phases.total:.2f}"]
        )
    return render_table(
        ["kind", *PHASE_NAMES, "Ta", "Tc", "total"],
        rows,
        title=(
            f"Phase breakdown (mean per kind), config "
            f"{result.config.label()}, N={result.n}: wall "
            f"{result.wall_time_s:.2f} s, {result.gflops:.2f} Gflops"
        ),
    )


def process_breakdown_table(result: HPLResult, limit: Optional[int] = None) -> str:
    """Per-process phase times (bottleneck hunting)."""
    rows = []
    timings = result.process_timings()
    if limit is not None:
        timings = timings[:limit]
    for timing in timings:
        rows.append(
            [timing.rank, timing.kind_name]
            + [f"{getattr(timing.phases, name):.2f}" for name in PHASE_NAMES]
            + [f"{timing.total:.2f}"]
        )
    return render_table(
        ["rank", "kind", *PHASE_NAMES, "total"],
        rows,
        title="Per-process phase breakdown",
    )


def breakdown_report(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params: Optional[HPLParameters] = None,
    noise: Optional[NoiseSpec] = None,
    seed: int = 0,
    per_process: bool = False,
) -> str:
    """Run one simulated measurement and render its breakdown."""
    result = run_hpl(spec, config, n, params=params, noise=noise, seed=seed)
    sections: List[str] = [kind_breakdown_table(result)]
    if per_process:
        sections.append(process_breakdown_table(result))
    bottleneck = result.bottleneck_kind()
    phases = result.kind_phases(bottleneck)
    dominant = max(PHASE_NAMES, key=lambda name: getattr(phases, name))
    sections.append(
        f"Bottleneck kind: {bottleneck} (dominant phase: {dominant}, "
        f"{getattr(phases, dominant):.2f} s of its {phases.total:.2f} s)"
    )
    return "\n\n".join(sections)
