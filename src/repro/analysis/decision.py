"""Decision confidence: how much does the argmin actually matter?

Both the paper's tables and this reproduction show the top configurations
separated by a few seconds — the estimated best and the measured best
routinely differ by one process count while the *times* differ by under
4%.  The right way to read such an optimizer is therefore not "the best
configuration is X" but "these k configurations are statistically tied;
any of them is fine".

:func:`decision_report` formalizes that: given a search outcome and a
model-error scale, it reports the **tie set** (candidates whose estimates
lie within the error band of the winner), the **margin** to the first
candidate outside it, and — when ground truth is available — whether the
measured optimum was inside the tie set (the reproduction's claim that
argmin misses are benign).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.cluster.config import ClusterConfig
from repro.core.optimizer import SearchOutcome
from repro.core.pipeline import EstimationPipeline
from repro.errors import SearchError


@dataclass(frozen=True)
class DecisionReport:
    """Tie structure of one optimization."""

    n: int
    best: ClusterConfig
    best_estimate: float
    #: candidates within the error band of the winner, winner first
    tie_set: Tuple[Tuple[ClusterConfig, float], ...]
    #: relative gap from the winner to the first non-tied candidate
    #: (``inf`` when everything ties)
    margin: float
    error_band: float

    @property
    def is_confident(self) -> bool:
        """True when the winner stands alone within the error band."""
        return len(self.tie_set) == 1

    def contains(self, config: ClusterConfig) -> bool:
        key = config.key()
        return any(c.key() == key for c, _ in self.tie_set)

    def describe(self, kinds: Optional[Sequence[str]] = None) -> str:
        labels = ", ".join(c.label(kinds) for c, _ in self.tie_set)
        margin = "inf" if self.margin == float("inf") else f"{self.margin:.1%}"
        return (
            f"N={self.n}: {len(self.tie_set)} configuration(s) tied within "
            f"{self.error_band:.0%} ({labels}); margin to the rest {margin}"
        )


def analyze_outcome(outcome: SearchOutcome, error_band: float) -> DecisionReport:
    """Extract the tie structure from a ranked search outcome.

    ``error_band`` is the relative model error to treat as noise — use the
    protocol's observed estimate-error scale (a few percent for Basic/NL).
    """
    if error_band < 0:
        raise SearchError(f"error_band must be >= 0, got {error_band}")
    ranking = outcome.ranking
    best = ranking[0]
    threshold = best.estimate_s * (1.0 + error_band)
    tie_set = tuple(
        (entry.config, entry.estimate_s)
        for entry in ranking
        if entry.estimate_s <= threshold
    )
    if len(tie_set) < len(ranking):
        first_outside = ranking[len(tie_set)].estimate_s
        margin = (first_outside - best.estimate_s) / best.estimate_s
    else:
        margin = float("inf")
    return DecisionReport(
        n=outcome.n,
        best=best.config,
        best_estimate=best.estimate_s,
        tie_set=tie_set,
        margin=margin,
        error_band=error_band,
    )


def decision_report(
    pipeline: EstimationPipeline,
    sizes: Optional[Sequence[int]] = None,
    error_band: float = 0.05,
) -> List[DecisionReport]:
    """Tie analysis for every evaluation size of a pipeline."""
    selected = sizes if sizes is not None else pipeline.plan.evaluation_sizes
    return [
        analyze_outcome(pipeline.optimize(int(n)), error_band) for n in selected
    ]


def decision_table(
    pipeline: EstimationPipeline,
    sizes: Optional[Sequence[int]] = None,
    error_band: float = 0.05,
) -> str:
    """Rendered tie analysis, with the measured optimum's membership."""
    kinds = pipeline.plan.kinds
    rows = []
    for report in decision_report(pipeline, sizes, error_band):
        actual, _ = pipeline.actual_best(report.n)
        rows.append(
            [
                report.n,
                report.best.label(kinds),
                len(report.tie_set),
                "inf" if report.margin == float("inf") else f"{report.margin:.1%}",
                actual.label(kinds),
                "yes" if report.contains(actual) else "NO",
            ]
        )
    return render_table(
        [
            "N",
            "est. best",
            f"tied within {error_band:.0%}",
            "margin beyond ties",
            "measured best",
            "measured best in tie set?",
        ],
        rows,
        title="Decision confidence (tie analysis)",
    )
