"""CSV export of every experiment's data, for external plotting.

The library deliberately ships no plotting dependency; these exporters
write plain CSV that gnuplot/matplotlib/spreadsheets ingest directly.
:func:`export_protocol` and :func:`export_figures` produce one file per
table/figure; the CLI's ``export`` command drives them.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.correlation import CorrelationData, correlation_data
from repro.analysis.errors import evaluation_rows
from repro.analysis.figures import Series, fig1_series, fig2_series, fig3a_series, fig3b_series
from repro.core.pipeline import EstimationPipeline


def series_to_csv(series: Sequence[Series], x_label: str) -> str:
    """Several labelled series sharing an x grid, as wide-format CSV."""
    if not series:
        return f"{x_label}\n"
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow([x_label, *(s.label for s in series)])
    for i, x in enumerate(series[0].x):
        writer.writerow(
            [f"{x:g}"] + [f"{s.y[i]:.6f}" if i < len(s.y) else "" for s in series]
        )
    return out.getvalue()


def correlation_to_csv(data: CorrelationData) -> str:
    """One row per evaluation configuration: estimates and measurement."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        ["config", "m1_group", "estimate_raw", "estimate_adjusted", "measured"]
    )
    for point in data.points:
        writer.writerow(
            [
                point.config.label(),
                point.group_mi,
                f"{point.estimate_raw:.6f}",
                f"{point.estimate_adjusted:.6f}",
                f"{point.measured:.6f}",
            ]
        )
    return out.getvalue()


def verification_to_csv(pipeline: EstimationPipeline) -> str:
    """The Tables 4/7/9 rows as CSV."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        [
            "n",
            "estimated_best",
            "tau",
            "tau_hat",
            "actual_best",
            "t_hat",
            "estimate_error",
            "regret",
        ]
    )
    for row in evaluation_rows(pipeline):
        writer.writerow(
            [
                row.n,
                row.estimated_config.label(pipeline.plan.kinds),
                f"{row.tau:.4f}",
                f"{row.tau_hat:.4f}",
                row.actual_config.label(pipeline.plan.kinds),
                f"{row.t_hat:.4f}",
                f"{row.estimate_error:.6f}",
                f"{row.regret:.6f}",
            ]
        )
    return out.getvalue()


def cost_to_csv(pipeline: EstimationPipeline) -> str:
    """The Tables 3/6 measurement-cost ledger as CSV."""
    out = io.StringIO()
    writer = csv.writer(out)
    kinds = list(pipeline.plan.kinds)
    writer.writerow(["n", *kinds])
    campaign = pipeline.campaign
    for n in pipeline.plan.construction_sizes:
        writer.writerow(
            [n] + [f"{campaign.cost_for_n(kind, n):.3f}" for kind in kinds]
        )
    writer.writerow(
        ["total"] + [f"{campaign.cost_for_kind(kind):.3f}" for kind in kinds]
    )
    return out.getvalue()


def export_protocol(
    pipeline: EstimationPipeline,
    out_dir: Path | str,
    correlation_sizes: Optional[Sequence[int]] = None,
) -> List[Path]:
    """Write a protocol's cost table, verification table and per-size
    correlation scatter; returns the written paths."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    name = pipeline.plan.name
    written = []

    def write(filename: str, text: str) -> None:
        path = directory / filename
        path.write_text(text)
        written.append(path)

    write(f"{name}_cost.csv", cost_to_csv(pipeline))
    write(f"{name}_verification.csv", verification_to_csv(pipeline))
    sizes = (
        correlation_sizes
        if correlation_sizes is not None
        else pipeline.plan.evaluation_sizes
    )
    for n in sizes:
        write(
            f"{name}_correlation_n{n}.csv",
            correlation_to_csv(correlation_data(pipeline, int(n))),
        )
    return written


def export_figures(out_dir: Path | str, seed: int = 0, spec=None) -> List[Path]:
    """Write the Figure 1-3 series as CSV; returns the written paths."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written = []

    def write(filename: str, text: str) -> None:
        path = directory / filename
        path.write_text(text)
        written.append(path)

    write("fig1_mpich121.csv", series_to_csv(fig1_series("1.2.1", seed=seed), "N"))
    write("fig1_mpich122.csv", series_to_csv(fig1_series("1.2.2", seed=seed), "N"))
    write("fig2_netpipe.csv", series_to_csv(fig2_series(), "block_kb"))
    write("fig3a_imbalance.csv", series_to_csv(fig3a_series(seed=seed, spec=spec), "N"))
    write("fig3b_multiprocess.csv", series_to_csv(fig3b_series(seed=seed, spec=spec), "N"))
    return written
