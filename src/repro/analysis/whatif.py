"""What-if hardware studies: how would decisions change on different gear?

The simulation substrate makes counterfactuals cheap that the paper could
not run: swap the interconnect (the testbed *had* 1000base-SX installed
but measured over 100base-TX) or the MPI library, re-run a protocol, and
compare optimal configurations side by side.  Used by
``benchmarks/bench_whatif.py`` and available to library users directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.cluster.config import ClusterConfig
from repro.cluster.spec import ClusterSpec
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.errors import MeasurementError


@dataclass(frozen=True)
class VariantOutcome:
    """Per-size decisions of one hardware variant."""

    label: str
    best_configs: Tuple[Tuple[int, ClusterConfig, float], ...]  # (n, config, measured s)

    def config_at(self, n: int) -> ClusterConfig:
        for size, config, _ in self.best_configs:
            if size == n:
                return config
        raise MeasurementError(f"{self.label}: no outcome for N={n}")

    def time_at(self, n: int) -> float:
        for size, config, t in self.best_configs:
            if size == n:
                return t
        raise MeasurementError(f"{self.label}: no outcome for N={n}")


def compare_variants(
    variants: Dict[str, ClusterSpec],
    protocol: str = "nl",
    seed: int = 0,
    sizes: Optional[Sequence[int]] = None,
) -> List[VariantOutcome]:
    """Run the protocol on each cluster variant; return the measured-best
    configuration and its time per size."""
    if not variants:
        raise MeasurementError("no variants supplied")
    outcomes = []
    for label, spec in variants.items():
        pipeline = EstimationPipeline(
            spec, PipelineConfig(protocol=protocol, seed=seed)
        )
        selected = sizes if sizes is not None else pipeline.plan.evaluation_sizes
        rows = []
        for n in selected:
            config, t = pipeline.actual_best(int(n))
            rows.append((int(n), config, t))
        outcomes.append(VariantOutcome(label=label, best_configs=tuple(rows)))
    return outcomes


def comparison_table(outcomes: Sequence[VariantOutcome], kinds) -> str:
    """Side-by-side best configurations and times per size."""
    if not outcomes:
        return "(no variants)"
    sizes = [n for n, _, _ in outcomes[0].best_configs]
    headers = ["N"]
    for outcome in outcomes:
        headers += [f"{outcome.label}: best", f"{outcome.label}: t [s]"]
    rows = []
    for n in sizes:
        row = [n]
        for outcome in outcomes:
            row += [
                outcome.config_at(n).label(kinds),
                f"{outcome.time_at(n):.1f}",
            ]
        rows.append(row)
    return render_table(headers, rows, title="What-if: hardware variants")
