"""Estimate-vs-measurement correlation data (Figures 6-15).

The paper's correlation figures scatter the estimated time ``T`` against
the measured time ``t`` for every evaluation configuration at one problem
order, grouped by ``M1`` (the Athlon's process count), before and after
the linear adjustment.  Points on the diagonal are perfect estimates; the
systematic below/above-diagonal drift of the ``M1 >= 3`` groups is what
motivates the adjustment, and the NS model's residual drift at large ``N``
is its failure signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.core.pipeline import EstimationPipeline
from repro.errors import MeasurementError


@dataclass(frozen=True)
class ScatterPoint:
    """One configuration's (estimate, measurement) pair."""

    config: ClusterConfig
    group_mi: int  # the paper groups points by M1 (first kind's Mi; 0 if unused)
    estimate_raw: float
    estimate_adjusted: float
    measured: float

    def deviation(self, adjusted: bool = True) -> float:
        est = self.estimate_adjusted if adjusted else self.estimate_raw
        return (est - self.measured) / self.measured


@dataclass
class CorrelationData:
    """All scatter points of one problem order."""

    n: int
    points: List[ScatterPoint]

    def groups(self) -> Dict[int, List[ScatterPoint]]:
        grouped: Dict[int, List[ScatterPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.group_mi, []).append(point)
        return grouped

    # -- goodness metrics ------------------------------------------------------

    def _arrays(self, adjusted: bool) -> tuple[np.ndarray, np.ndarray]:
        est = np.array(
            [p.estimate_adjusted if adjusted else p.estimate_raw for p in self.points]
        )
        meas = np.array([p.measured for p in self.points])
        return est, meas

    def r_squared(self, adjusted: bool = True) -> float:
        """Coefficient of determination of the estimate against the
        diagonal ``t = T`` (1.0 = all points on the diagonal)."""
        est, meas = self._arrays(adjusted)
        ss_res = float(np.sum((meas - est) ** 2))
        ss_tot = float(np.sum((meas - np.mean(meas)) ** 2))
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot

    def mean_abs_deviation(self, adjusted: bool = True) -> float:
        est, meas = self._arrays(adjusted)
        return float(np.mean(np.abs(est - meas) / meas))

    def worst_deviation(self, adjusted: bool = True) -> float:
        est, meas = self._arrays(adjusted)
        return float(np.max(np.abs(est - meas) / meas))

    def systematic_slope(self, adjusted: bool = True) -> float:
        """Least-squares slope of measurement on estimate through the
        origin; 1.0 means no systematic scaling error."""
        est, meas = self._arrays(adjusted)
        denom = float(est @ est)
        if denom == 0:
            raise MeasurementError("all estimates are zero")
        return float(est @ meas) / denom


def correlation_data(
    pipeline: EstimationPipeline,
    n: int,
    configs: Optional[Sequence[ClusterConfig]] = None,
) -> CorrelationData:
    """Scatter of every evaluation configuration at problem order ``n``."""
    candidates = (
        list(configs) if configs is not None else list(pipeline.plan.evaluation_configs)
    )
    first_kind = pipeline.plan.kinds[0]
    points = []
    for config in candidates:
        estimate = pipeline.estimate(config, n)
        measured = pipeline.measured_time(config, n)
        points.append(
            ScatterPoint(
                config=config,
                group_mi=config.procs_per_pe(first_kind),
                estimate_raw=estimate.raw_total,
                estimate_adjusted=estimate.adjusted_total,
                measured=measured,
            )
        )
    return CorrelationData(n=n, points=points)
