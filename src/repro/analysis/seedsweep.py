"""Seed sweeps: is a protocol's behaviour robust, or one lucky draw?

Every reported table comes from one noise seed, just as the paper's came
from one set of physical runs.  A seed sweep re-runs a protocol end to end
under ``k`` independent noise seeds and aggregates the error metrics, so
claims like "Basic regret stays in the low percents" and "NS always
underestimates catastrophically" can be stated over a *distribution*
rather than an instance.  The bench ``benchmarks/bench_seed_sweep.py``
runs it and EXPERIMENTS.md quotes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.errors import evaluation_rows
from repro.cluster.spec import ClusterSpec
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.errors import MeasurementError


@dataclass(frozen=True)
class SweepStats:
    """Distribution of one metric over the sweep's seeds."""

    values: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def worst(self) -> float:
        return float(np.max(self.values))

    @property
    def best(self) -> float:
        return float(np.min(self.values))

    def fraction_above(self, threshold: float) -> float:
        return float(np.mean(np.asarray(self.values) > threshold))


@dataclass
class SeedSweepResult:
    """Aggregated metrics of one protocol across seeds."""

    protocol: str
    seeds: Tuple[int, ...]
    #: worst |(tau - T^)/T^| per seed, over sizes >= min_n
    worst_abs_error: SweepStats
    #: worst regret per seed, over sizes >= min_n
    worst_regret: SweepStats
    #: fraction of sizes where the exact measured optimum was picked, per seed
    hit_rate: SweepStats

    def summary_row(self) -> List[str]:
        return [
            self.protocol,
            f"{self.worst_abs_error.mean:.3f} ± {self.worst_abs_error.std:.3f}",
            f"{self.worst_regret.mean:.3f} ± {self.worst_regret.std:.3f}",
            f"{self.worst_regret.worst:.3f}",
            f"{self.hit_rate.mean:.2f}",
        ]


SWEEP_HEADERS = [
    "protocol",
    "worst |est err| (mean ± sd)",
    "worst regret (mean ± sd)",
    "regret max over seeds",
    "optimum hit rate",
]


def sweep_protocol(
    spec: ClusterSpec,
    protocol: str,
    seeds: Sequence[int],
    min_n: int = 3200,
    base_config: Optional[PipelineConfig] = None,
) -> SeedSweepResult:
    """Run ``protocol`` once per seed and aggregate the verification
    metrics over sizes ``>= min_n``."""
    if not seeds:
        raise MeasurementError("need at least one seed")
    worst_errors, worst_regrets, hit_rates = [], [], []
    for seed in seeds:
        if base_config is not None:
            from dataclasses import replace

            config = replace(base_config, protocol=protocol, seed=int(seed))
        else:
            config = PipelineConfig(protocol=protocol, seed=int(seed))
        pipeline = EstimationPipeline(spec, config)
        rows = [r for r in evaluation_rows(pipeline) if r.n >= min_n]
        if not rows:
            raise MeasurementError(
                f"no evaluation sizes >= {min_n} for protocol {protocol!r}"
            )
        worst_errors.append(max(abs(r.estimate_error) for r in rows))
        worst_regrets.append(max(r.regret for r in rows))
        hit_rates.append(
            sum(1 for r in rows if r.picked_optimum) / len(rows)
        )
    return SeedSweepResult(
        protocol=protocol,
        seeds=tuple(int(s) for s in seeds),
        worst_abs_error=SweepStats(tuple(worst_errors)),
        worst_regret=SweepStats(tuple(worst_regrets)),
        hit_rate=SweepStats(tuple(hit_rates)),
    )
