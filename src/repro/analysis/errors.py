"""Best-configuration error analysis: the rows of Tables 4, 7 and 9.

For each evaluated problem order the paper reports:

* the **estimated best** configuration, its estimate ``tau`` and its
  *measured* execution time ``tau_hat``;
* the **actual best** configuration and its measured time ``T_hat``;
* two errors: ``(tau - T_hat) / T_hat`` (how far the estimate is from the
  true optimum's time — the model-quality signal) and
  ``(tau_hat - T_hat) / T_hat`` (the *regret*: how much slower the chosen
  configuration actually runs than the true optimum — the decision-quality
  signal, 0 when the right configuration was picked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.core.pipeline import EstimationPipeline


@dataclass(frozen=True)
class EvaluationRow:
    """One row of a Table 4/7/9-style report."""

    n: int
    estimated_config: ClusterConfig
    tau: float  # estimated time of the estimated-best configuration
    tau_hat: float  # measured time of the estimated-best configuration
    actual_config: ClusterConfig
    t_hat: float  # measured time of the actual-best configuration

    @property
    def estimate_error(self) -> float:
        """``(tau - T_hat) / T_hat``."""
        return (self.tau - self.t_hat) / self.t_hat

    @property
    def regret(self) -> float:
        """``(tau_hat - T_hat) / T_hat`` — execution-time loss from picking
        the estimated configuration instead of the true optimum."""
        return (self.tau_hat - self.t_hat) / self.t_hat

    @property
    def picked_optimum(self) -> bool:
        return self.estimated_config.key() == self.actual_config.key()

    def as_cells(self, kinds: Optional[Sequence[str]] = None) -> List[str]:
        return [
            str(self.n),
            self.estimated_config.label(kinds),
            f"{self.tau:.1f}",
            f"{self.tau_hat:.1f}",
            self.actual_config.label(kinds),
            f"{self.t_hat:.1f}",
            f"{self.estimate_error:+.3f}",
            f"{self.regret:+.3f}",
        ]


EVALUATION_HEADERS = [
    "N",
    "est. best (P1,M1,P2,M2)",
    "tau",
    "tau^",
    "actual best",
    "T^",
    "(tau-T^)/T^",
    "(tau^-T^)/T^",
]


def evaluation_row(pipeline: EstimationPipeline, n: int) -> EvaluationRow:
    """Compute one verification row at problem order ``n``."""
    outcome = pipeline.optimize(n)
    est_best = outcome.best
    tau_hat = pipeline.measured_time(est_best.config, n)
    actual_config, t_hat = pipeline.actual_best(n)
    return EvaluationRow(
        n=n,
        estimated_config=est_best.config,
        tau=est_best.estimate_s,
        tau_hat=tau_hat,
        actual_config=actual_config,
        t_hat=t_hat,
    )


def evaluation_rows(
    pipeline: EstimationPipeline, sizes: Optional[Sequence[int]] = None
) -> List[EvaluationRow]:
    """All verification rows of a pipeline (Tables 4/7/9)."""
    selected = sizes if sizes is not None else pipeline.plan.evaluation_sizes
    return [evaluation_row(pipeline, int(n)) for n in selected]


def worst_abs_estimate_error(rows: Sequence[EvaluationRow]) -> float:
    """Largest |(tau - T^)/T^| across the rows."""
    return max(abs(row.estimate_error) for row in rows)


def worst_regret(rows: Sequence[EvaluationRow]) -> float:
    """Largest execution-time regret across the rows."""
    return max(row.regret for row in rows)
