"""Versioned model ledger: every generation on disk, one promoted.

A calibration loop that overwrites its model in place cannot answer
"what were we serving last Tuesday?" or undo a bad promotion.
:class:`ModelVersions` keeps each generation as a full saved-pipeline
directory (``v0001``, ``v0002``, …, written by
:func:`~repro.core.persistence.save_pipeline`, so any version can be
loaded and served on its own) under one root, with a ``MANIFEST.json``
recording each version's fingerprint, parent fingerprint, fit window,
residual statistics and shadow-evaluation report, plus which version is
*active* (promoted) and which was active before it (the rollback
target).  The manifest is rewritten atomically (temp file +
``os.replace``) so a crash mid-promotion leaves either the old or the
new state, never a torn one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.persistence import load_pipeline, save_pipeline
from repro.core.pipeline import EstimationPipeline
from repro.errors import CalibrationError

_MANIFEST = "MANIFEST.json"
_FORMAT_VERSION = 1

#: Lifecycle of one version.
STATUSES = ("candidate", "promoted", "retired")


@dataclass(frozen=True)
class VersionInfo:
    """One ledger row: the metadata of one model generation."""

    version_id: str
    fingerprint: str
    parent_fingerprint: Optional[str]
    status: str
    protocol: str
    fit_window: Optional[Dict[str, object]] = None
    residuals: Optional[Dict[str, object]] = None
    shadow: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "version_id": self.version_id,
            "fingerprint": self.fingerprint,
            "parent_fingerprint": self.parent_fingerprint,
            "status": self.status,
            "protocol": self.protocol,
            "fit_window": self.fit_window,
            "residuals": self.residuals,
            "shadow": self.shadow,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "VersionInfo":
        try:
            return cls(
                version_id=str(data["version_id"]),
                fingerprint=str(data["fingerprint"]),
                parent_fingerprint=(
                    str(data["parent_fingerprint"])
                    if data.get("parent_fingerprint") is not None
                    else None
                ),
                status=str(data["status"]),
                protocol=str(data["protocol"]),
                fit_window=data.get("fit_window"),  # type: ignore[arg-type]
                residuals=data.get("residuals"),  # type: ignore[arg-type]
                shadow=data.get("shadow"),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"malformed version entry: {exc!r}") from exc


class ModelVersions:
    """The ledger over one root directory."""

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._versions: List[VersionInfo] = []
        self._active: Optional[str] = None
        self._previous: Optional[str] = None
        if (self.root / _MANIFEST).exists():
            self._read_manifest()

    # -- manifest I/O -------------------------------------------------------

    def _read_manifest(self) -> None:
        path = self.root / _MANIFEST
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CalibrationError(f"corrupt ledger manifest {path} ({exc})") from exc
        if payload.get("format") != _FORMAT_VERSION:
            raise CalibrationError(
                f"unknown ledger format {payload.get('format')!r} in {path}"
            )
        self._versions = [VersionInfo.from_dict(v) for v in payload["versions"]]
        self._active = payload.get("active")
        self._previous = payload.get("previous")

    def _write_manifest(self) -> None:
        payload = {
            "format": _FORMAT_VERSION,
            "active": self._active,
            "previous": self._previous,
            "versions": [v.to_dict() for v in self._versions],
        }
        path = self.root / _MANIFEST
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=1), encoding="utf-8")
        os.replace(tmp, path)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._versions)

    def history(self) -> List[VersionInfo]:
        return list(self._versions)

    def get(self, version_id: str) -> VersionInfo:
        for version in self._versions:
            if version.version_id == version_id:
                return version
        raise CalibrationError(
            f"unknown model version {version_id!r} "
            f"(ledger has: {', '.join(v.version_id for v in self._versions) or 'none'})"
        )

    @property
    def active_id(self) -> Optional[str]:
        return self._active

    @property
    def previous_id(self) -> Optional[str]:
        return self._previous

    def active(self) -> VersionInfo:
        if self._active is None:
            raise CalibrationError("no model version has been promoted yet")
        return self.get(self._active)

    def directory(self, version_id: str) -> Path:
        self.get(version_id)  # validate
        return self.root / version_id

    def load_pipeline(self, version_id: str) -> EstimationPipeline:
        return load_pipeline(self.directory(version_id))

    # -- mutation -----------------------------------------------------------

    def add(
        self,
        pipeline: EstimationPipeline,
        parent_fingerprint: Optional[str] = None,
        fit_window: Optional[Dict[str, object]] = None,
        residuals: Optional[Dict[str, object]] = None,
        shadow: Optional[Dict[str, object]] = None,
        status: str = "candidate",
    ) -> VersionInfo:
        """Persist a pipeline as the next version (``v0001``, ``v0002``…).

        ``status="promoted"`` registers-and-activates in one step — how a
        ledger is bootstrapped from the already-serving seed model.
        """
        if status not in STATUSES:
            raise CalibrationError(
                f"status must be one of {STATUSES}, got {status!r}"
            )
        version_id = f"v{len(self._versions) + 1:04d}"
        # Only persist an evaluation dataset the pipeline already holds:
        # asking for one it lacks would trigger a full evaluation-grid
        # simulation just to write a file nobody requested.
        save_pipeline(
            pipeline,
            self.root / version_id,
            include_evaluation=pipeline.graph.has("evaluation"),
        )
        info = VersionInfo(
            version_id=version_id,
            fingerprint=pipeline.estimate_cache.fingerprint,
            parent_fingerprint=parent_fingerprint,
            status=status,
            protocol=pipeline.plan.name,
            fit_window=fit_window,
            residuals=residuals,
            shadow=shadow,
        )
        self._versions.append(info)
        if status == "promoted":
            self._previous = self._active
            self._active = version_id
            self._retire_others(version_id)
        self._write_manifest()
        return info

    def _retire_others(self, active_id: str) -> None:
        self._versions = [
            v
            if v.version_id == active_id or v.status != "promoted"
            else VersionInfo(**{**v.to_dict(), "status": "retired"})
            for v in self._versions
        ]

    def _set_status(self, version_id: str, status: str) -> None:
        self._versions = [
            VersionInfo(**{**v.to_dict(), "status": status})
            if v.version_id == version_id
            else v
            for v in self._versions
        ]

    def promote(self, version_id: str) -> VersionInfo:
        """Make ``version_id`` the active generation (the old active
        becomes the rollback target)."""
        self.get(version_id)  # raises on unknown id
        if version_id == self._active:
            return self.get(version_id)
        self._previous = self._active
        self._active = version_id
        self._retire_others(version_id)
        self._set_status(version_id, "promoted")
        self._write_manifest()
        return self.get(version_id)

    def rollback(self) -> VersionInfo:
        """Re-promote the previously active version."""
        if self._previous is None:
            raise CalibrationError(
                "cannot roll back: no previously promoted version recorded"
            )
        return self.promote(self._previous)

    def describe(self) -> str:
        if not self._versions:
            return "ModelVersions(empty)"
        lines = [f"ModelVersions({self.root}, active={self._active})"]
        for version in self._versions:
            marker = "*" if version.version_id == self._active else " "
            lines.append(
                f" {marker} {version.version_id} [{version.status}] "
                f"fingerprint={version.fingerprint} "
                f"parent={version.parent_fingerprint or '-'}"
            )
        return "\n".join(lines)
