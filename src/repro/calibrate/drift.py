"""Residual tracking and drift detection for the calibration loop.

A fitted model's health is one number stream: the **relative residual**
``(observed - predicted) / predicted`` of each incoming observation
against the currently promoted model.  A healthy model produces residuals
scattered around zero; a platform change (degraded network, changed MPI
library, paging) shifts the stream's mean.  Two consumers watch it:

* :class:`ResidualTracker` — exact running statistics (Welford) of the
  residuals, overall and per ``(kind, Mi)``, so operators can see *which*
  model family degraded (an intra-node drift shows up on ``Mi >= 2``
  families, a network drift on multi-PE kinds);
* :class:`DriftDetector` — a two-sided Page–Hinkley test that turns the
  stream into a deterministic alarm.  Page–Hinkley accumulates
  ``x_t - mean_t - delta`` and alarms when the accumulation rises more
  than ``threshold`` above its running minimum — the classic
  change-point detector for "the mean shifted and stayed shifted",
  robust to isolated outliers because a single spike cannot sustain the
  accumulation.  Everything is seed-free arithmetic on the residual
  stream: the same log contents always produce the same alarm at the
  same sequence number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import CalibrationError

#: Valid drift directions: degradation only (+), speedup only (-), or both.
DIRECTIONS = ("increase", "decrease", "both")


class ResidualStats:
    """Exact running mean/variance (Welford) of one residual stream."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.max_abs = 0.0

    def update(self, value: float) -> None:
        if not math.isfinite(value):
            raise CalibrationError(f"residuals must be finite, got {value!r}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.max_abs = max(self.max_abs, abs(value))

    @property
    def variance(self) -> float:
        """Sample variance (0 with fewer than two observations)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "max_abs": self.max_abs,
        }

    def describe(self) -> str:
        return (
            f"{self.count} residuals, mean {self.mean:+.4f}, "
            f"std {self.std:.4f}, max|r| {self.max_abs:.4f}"
        )


class ResidualTracker:
    """Residual statistics overall and per ``(kind, Mi)`` model family."""

    def __init__(self) -> None:
        self.overall = ResidualStats()
        self.by_family: Dict[Tuple[str, int], ResidualStats] = {}

    def update_total(self, residual: float) -> None:
        self.overall.update(residual)

    def update_family(self, kind_name: str, mi: int, residual: float) -> None:
        key = (kind_name, int(mi))
        if key not in self.by_family:
            self.by_family[key] = ResidualStats()
        self.by_family[key].update(residual)

    def reset(self) -> None:
        """Forget everything — called when a new model generation is
        promoted (old residuals describe the old model)."""
        self.overall = ResidualStats()
        self.by_family = {}

    def to_dict(self) -> Dict[str, object]:
        return {
            "overall": self.overall.to_dict(),
            "by_family": {
                f"{kind}/mi={mi}": stats.to_dict()
                for (kind, mi), stats in sorted(self.by_family.items())
            },
        }

    def describe(self) -> str:
        lines = [f"overall: {self.overall.describe()}"]
        for (kind, mi), stats in sorted(self.by_family.items()):
            lines.append(f"{kind}/Mi={mi}: {stats.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class DriftConfig:
    """Page–Hinkley knobs.

    ``delta`` is the per-observation slack (mean shifts smaller than this
    are noise by definition); ``threshold`` is the alarm level on the
    accumulated deviation; ``min_observations`` suppresses alarms until
    the running mean has something to stand on.
    """

    delta: float = 0.02
    threshold: float = 0.5
    min_observations: int = 8
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise CalibrationError(f"delta must be >= 0, got {self.delta}")
        if self.threshold <= 0:
            raise CalibrationError(
                f"threshold must be positive, got {self.threshold}"
            )
        if self.min_observations < 1:
            raise CalibrationError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )
        if self.direction not in DIRECTIONS:
            raise CalibrationError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )


@dataclass(frozen=True)
class DriftState:
    """One snapshot of the detector (what ``observe`` replies carry)."""

    observations: int
    mean: float
    ph_increase: float
    ph_decrease: float
    threshold: float
    drifted: bool
    alarmed_at: Optional[int]
    alarm_direction: Optional[str]

    def to_dict(self) -> Dict[str, object]:
        return {
            "observations": self.observations,
            "mean": self.mean,
            "ph_increase": self.ph_increase,
            "ph_decrease": self.ph_decrease,
            "threshold": self.threshold,
            "drifted": self.drifted,
            "alarmed_at": self.alarmed_at,
            "alarm_direction": self.alarm_direction,
        }


class DriftDetector:
    """Two-sided Page–Hinkley over the residual stream.

    The alarm is *sticky*: once fired it stays up (and records the
    observation index that fired it) until :meth:`reset` — promotion of a
    recalibrated model is the designed reset point.
    """

    def __init__(self, config: Optional[DriftConfig] = None):
        self.config = config if config is not None else DriftConfig()
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m_inc = 0.0
        self._min_inc = 0.0
        self._m_dec = 0.0
        self._max_dec = 0.0
        self._alarmed_at: Optional[int] = None
        self._alarm_direction: Optional[str] = None

    # -- update -------------------------------------------------------------

    def update(self, residual: float) -> DriftState:
        """Fold one residual in; returns the post-update state."""
        if not math.isfinite(residual):
            raise CalibrationError(f"residuals must be finite, got {residual!r}")
        cfg = self.config
        self._count += 1
        self._mean += (residual - self._mean) / self._count
        self._m_inc += residual - self._mean - cfg.delta
        self._min_inc = min(self._min_inc, self._m_inc)
        self._m_dec += residual - self._mean + cfg.delta
        self._max_dec = max(self._max_dec, self._m_dec)
        if self._alarmed_at is None and self._count >= cfg.min_observations:
            if (
                cfg.direction in ("increase", "both")
                and self.ph_increase > cfg.threshold
            ):
                self._alarmed_at = self._count
                self._alarm_direction = "increase"
            elif (
                cfg.direction in ("decrease", "both")
                and self.ph_decrease > cfg.threshold
            ):
                self._alarmed_at = self._count
                self._alarm_direction = "decrease"
        return self.state

    # -- state --------------------------------------------------------------

    @property
    def ph_increase(self) -> float:
        """Accumulated upward deviation above its running minimum."""
        return self._m_inc - self._min_inc

    @property
    def ph_decrease(self) -> float:
        """Accumulated downward deviation below its running maximum."""
        return self._max_dec - self._m_dec

    @property
    def drifted(self) -> bool:
        return self._alarmed_at is not None

    @property
    def state(self) -> DriftState:
        return DriftState(
            observations=self._count,
            mean=self._mean,
            ph_increase=self.ph_increase,
            ph_decrease=self.ph_decrease,
            threshold=self.config.threshold,
            drifted=self.drifted,
            alarmed_at=self._alarmed_at,
            alarm_direction=self._alarm_direction,
        )

    def describe(self) -> str:
        state = self.state
        status = (
            f"DRIFTED ({state.alarm_direction} at observation {state.alarmed_at})"
            if state.drifted
            else "healthy"
        )
        return (
            f"{status}: {state.observations} residuals, "
            f"mean {state.mean:+.4f}, "
            f"PH+ {state.ph_increase:.4f} / PH- {state.ph_decrease:.4f} "
            f"(threshold {state.threshold:.4f})"
        )
