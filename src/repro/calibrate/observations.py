"""Observation ingestion: the stream that closes the measure→fit→serve loop.

The paper's models are empirical — the k0..k6 coefficients are only as
good as the measurements they were fitted on, and the platform underneath
them does not stand still (a switch renegotiates to a lower rate, a
kernel upgrade changes the MPI shared-memory path).  An
:class:`ObservationLog` is where *live* evidence accumulates: every
record is one timed run — a real execution, a ``run_hpl_batch`` replay,
or a ``{"op": "observe"}`` request to the serving layer — appended to a
JSONL file whose contents alone determine every calibration decision
(drift alarms, refit windows, shadow scores).  No clocks, no RNG: replay
the log and you replay the decisions.

An observation wraps a full :class:`~repro.measure.record.MeasurementRecord`
(the flat ``(P1, M1, P2, M2)`` configuration, the problem order ``N``,
the wall time and the per-kind ``Ta``/``Tc`` breakdown), tagged with a
monotonically increasing sequence number and a free-form source label.
Unlike a campaign :class:`~repro.measure.dataset.Dataset`, the log allows
repeated ``(config, N)`` coordinates — observing the same point twice is
the normal case for a long-lived service — so :meth:`ObservationLog.as_dataset`
re-numbers trials into a reserved band before handing records to the
key-unique dataset layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import CalibrationError
from repro.measure.dataset import Dataset
from repro.measure.record import MeasurementRecord

_FORMAT_VERSION = 1

#: Trial numbers of observation records in :meth:`ObservationLog.as_dataset`
#: start here, far above any campaign's trial indices, so observed records
#: can never collide with seed-dataset keys when the two are merged.
OBSERVATION_TRIAL_BASE = 1_000_000


@dataclass(frozen=True)
class Observation:
    """One logged run: a measurement record plus its log identity."""

    seq: int
    source: str
    record: MeasurementRecord
    #: Workload family tag of the run (:mod:`repro.workloads`).  Logs
    #: written before the workload subsystem carry no tag and read back
    #: as ``"hpl"`` — the only family that existed then.
    workload: str = "hpl"

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": _FORMAT_VERSION,
            "seq": self.seq,
            "source": self.source,
            "workload": self.workload,
            "record": self.record.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Observation":
        try:
            return cls(
                seq=int(data["seq"]),  # type: ignore[arg-type]
                source=str(data["source"]),
                record=MeasurementRecord.from_dict(data["record"]),  # type: ignore[arg-type]
                workload=str(data.get("workload", "hpl")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"malformed observation: {exc!r}") from exc


class ObservationLog:
    """Append-only store of observations, optionally file-backed.

    With a ``path`` the log is persistent JSONL — one observation per
    line, flushed on every append so a crashed service loses at most the
    line being written; re-opening the same path replays the file and
    continues the sequence.  Without a path the log is in-memory (tests,
    short-lived replay sessions).
    """

    def __init__(self, path: Optional[Path | str] = None):
        self.path = Path(path) if path is not None else None
        self._observations: List[Observation] = []
        self._handle = None
        if self.path is not None and self.path.exists():
            self._replay_file()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")

    def _replay_file(self) -> None:
        assert self.path is not None
        for lineno, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), 1
        ):
            text = line.strip()
            if not text:
                continue
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                raise CalibrationError(
                    f"corrupt observation log {self.path}:{lineno} ({exc})"
                ) from exc
            observation = Observation.from_dict(payload)
            if observation.seq != len(self._observations):
                raise CalibrationError(
                    f"observation log {self.path}:{lineno} is out of sequence "
                    f"(expected seq {len(self._observations)}, "
                    f"got {observation.seq})"
                )
            self._observations.append(observation)

    # -- mutation -----------------------------------------------------------

    def append(
        self, record: MeasurementRecord, source: str = "live",
        workload: str = "hpl",
    ) -> Observation:
        """Log one run; returns the observation with its assigned ``seq``."""
        observation = Observation(
            seq=len(self._observations), source=source, record=record,
            workload=workload,
        )
        self._observations.append(observation)
        if self._handle is not None:
            self._handle.write(json.dumps(observation.to_dict()) + "\n")
            self._handle.flush()
        return observation

    def extend_from_dataset(
        self, dataset: Dataset, source: str = "dataset",
        workload: str = "hpl",
    ) -> List[Observation]:
        """The measure→observation adapter: ingest a whole campaign/replay
        dataset (e.g. ``run_hpl_batch`` output) in record order."""
        return [
            self.append(record, source=source, workload=workload)
            for record in dataset
        ]

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ObservationLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._observations)

    def __getitem__(self, index: int) -> Observation:
        return self._observations[index]

    @property
    def observations(self) -> List[Observation]:
        return list(self._observations)

    def tail(self, count: int) -> List[Observation]:
        """The newest ``count`` observations (fewer if the log is short)."""
        if count < 1:
            raise CalibrationError(f"tail count must be >= 1, got {count}")
        return self._observations[-count:]

    def window(self, start_seq: int, end_seq: int) -> List[Observation]:
        """Observations with ``start_seq <= seq <= end_seq`` (inclusive)."""
        return [
            o for o in self._observations if start_seq <= o.seq <= end_seq
        ]

    def sources(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for observation in self._observations:
            counts[observation.source] = counts.get(observation.source, 0) + 1
        return counts

    def as_dataset(
        self, observations: Optional[Sequence[Observation]] = None
    ) -> Dataset:
        """The observations as a key-unique :class:`Dataset`.

        Each record's trial is re-numbered to
        ``OBSERVATION_TRIAL_BASE + seq`` so repeated ``(config, N)``
        coordinates (legitimate in a stream) and collisions with campaign
        keys (trials 0..k) are both impossible.
        """
        selected = self._observations if observations is None else observations
        return Dataset(
            replace(o.record, trial=OBSERVATION_TRIAL_BASE + o.seq)
            for o in selected
        )

    def summary(self) -> str:
        if not self._observations:
            return "ObservationLog(empty)"
        sources = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.sources().items())
        )
        where = str(self.path) if self.path is not None else "memory"
        return (
            f"ObservationLog({len(self._observations)} observations, "
            f"seq 0..{self._observations[-1].seq}, {sources}; {where})"
        )
