"""The calibration loop's front object: ingest → detect → refit → promote.

:class:`Calibrator` owns one model's loop state: the observation log, the
residual tracker, the drift detector, and (optionally) the version
ledger.  It deliberately does **not** import the serve layer — promotion
talks to the registry through a duck-typed ``promote(name, directory)``
hook, so ``repro.calibrate`` sits beside ``repro.serve`` in the import
graph rather than on top of it, and the loop is equally usable from the
CLI, from tests, or embedded in the estimation service.

The incumbent pipeline is supplied by a ``pipeline_provider`` callable
rather than held directly: when the serve registry hot-swaps its entry,
the provider resolves to the *new* generation and residuals are scored
against what is actually being served.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import isfinite
from typing import Callable, Dict, Optional, Tuple

from repro.core.pipeline import EstimationPipeline
from repro.errors import CalibrationError, ReproError
from repro.measure.dataset import Dataset
from repro.measure.record import MeasurementRecord
from repro.perf.report import PerfReport
from repro.calibrate.drift import (
    DriftDetector,
    DriftState,
    ResidualTracker,
)
from repro.calibrate.observations import Observation, ObservationLog
from repro.calibrate.recalibrate import Recalibrator, ShadowReport
from repro.calibrate.versions import ModelVersions, VersionInfo


@dataclass(frozen=True)
class IngestResult:
    """What one ingested observation did to the loop state."""

    seq: int
    source: str
    observed: float
    predicted: Optional[float]
    residual: Optional[float]
    per_kind: Dict[str, float]
    drift: DriftState

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "source": self.source,
            "observed": self.observed,
            "predicted": self.predicted,
            "residual": self.residual,
            "per_kind": dict(self.per_kind),
            "drift": self.drift.to_dict(),
        }


class Calibrator:
    """Online calibration loop for one served model."""

    def __init__(
        self,
        name: str,
        pipeline_provider: Callable[[], EstimationPipeline],
        log: Optional[ObservationLog] = None,
        detector: Optional[DriftDetector] = None,
        versions: Optional[ModelVersions] = None,
        recalibrator: Optional[Recalibrator] = None,
        perf: Optional[PerfReport] = None,
        metrics=None,
    ):
        self.name = name
        self._provider = pipeline_provider
        self.log = log if log is not None else ObservationLog()
        self.detector = detector if detector is not None else DriftDetector()
        self.versions = versions
        self.recalibrator = (
            recalibrator if recalibrator is not None else Recalibrator()
        )
        self.perf = perf if perf is not None else PerfReport()
        #: Serve-layer counters (``ServeMetrics``-shaped: attributes
        #: ``observations``/``drift_alarms``/``promotions``/``rollbacks``);
        #: ``None`` outside the service.
        self.metrics = metrics
        self.tracker = ResidualTracker()
        #: Observations that could not be scored (prediction outside the
        #: model domain) — logged but not folded into drift state.
        self.skipped = 0
        #: What the last registry promotion/rollback hook reported.  A
        #: plain ``ModelRegistry`` returns an entry (recorded as its
        #: fingerprint); a ``FleetSupervisor`` returns its fan-out dict
        #: (replicas reached, transaction id), kept verbatim.
        self.last_promotion = None

    @property
    def pipeline(self) -> EstimationPipeline:
        return self._provider()

    # -- ingestion ----------------------------------------------------------

    def ingest(
        self, record: MeasurementRecord, source: str = "live"
    ) -> IngestResult:
        """Log one observed run and fold its residual into the loop.

        The logged row carries the owning pipeline's workload tag, so a
        replayed log knows which family's simulator produced each run."""
        with self.perf.stage("ingest"):
            observation = self.log.append(
                record, source=source,
                workload=self.pipeline.config.workload,
            )
            result = self._absorb(self._score(observation))
        return result

    def replay_dataset(self, dataset: Dataset, source: str = "dataset") -> list:
        """Ingest a whole campaign/replay dataset in record order."""
        return [self.ingest(record, source=source) for record in dataset]

    def replay_log(self) -> list:
        """Rebuild tracker/detector state from an existing log without
        re-appending — how a restarted loop resumes deterministically."""
        self.tracker.reset()
        self.detector.reset()
        self.skipped = 0
        results = []
        with self.perf.stage("ingest"):
            for observation in self.log:
                results.append(
                    self._absorb(self._score(observation), count_metric=False)
                )
        return results

    def _score(self, observation: Observation) -> IngestResult:
        pipeline = self.pipeline
        record = observation.record
        predicted: Optional[float] = None
        residual: Optional[float] = None
        per_kind: Dict[str, float] = {}
        try:
            estimate = pipeline.estimate(record.config(), record.n)
        except ReproError:
            estimate = None
        if estimate is not None and estimate.valid and isfinite(estimate.total):
            predicted = estimate.total
            residual = (record.wall_time_s - predicted) / predicted
            for km in record.per_kind:
                if km.pe_count == 0:
                    continue
                kind_estimate = estimate.kind(km.kind_name)
                if kind_estimate.valid and kind_estimate.total > 0:
                    per_kind[km.kind_name] = (
                        (km.total - kind_estimate.total) / kind_estimate.total
                    )
        return IngestResult(
            seq=observation.seq,
            source=observation.source,
            observed=record.wall_time_s,
            predicted=predicted,
            residual=residual,
            per_kind=per_kind,
            drift=self.detector.state,
        )

    def _absorb(self, result: IngestResult, count_metric: bool = True) -> IngestResult:
        if result.residual is None:
            self.skipped += 1
            if count_metric and self.metrics is not None:
                self.metrics.observations += 1
            return result
        was_drifted = self.detector.drifted
        drift = self.detector.update(result.residual)
        self.tracker.update_total(result.residual)
        record = self.log[result.seq].record
        for km in record.per_kind:
            if km.kind_name in result.per_kind:
                self.tracker.update_family(
                    km.kind_name, km.procs_per_pe, result.per_kind[km.kind_name]
                )
        if count_metric and self.metrics is not None:
            self.metrics.observations += 1
            if drift.drifted and not was_drifted:
                self.metrics.drift_alarms += 1
        return replace(result, drift=drift)

    # -- status -------------------------------------------------------------

    @property
    def drifted(self) -> bool:
        return self.detector.drifted

    def status(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "name": self.name,
            "workload": self.pipeline.config.workload,
            "fingerprint": self.pipeline.estimate_cache.fingerprint,
            "observations": len(self.log),
            "skipped": self.skipped,
            "sources": self.log.sources(),
            "drift": self.detector.state.to_dict(),
            "residuals": self.tracker.to_dict(),
        }
        if self.versions is not None:
            info["versions"] = {
                "active": self.versions.active_id,
                "previous": self.versions.previous_id,
                "count": len(self.versions),
            }
        if self.last_promotion is not None:
            info["last_promotion"] = self.last_promotion
        return info

    # -- refit / promote / rollback ----------------------------------------

    def _require_versions(self) -> ModelVersions:
        if self.versions is None:
            raise CalibrationError(
                f"calibrator {self.name!r} has no version ledger "
                "(pass versions=ModelVersions(...))"
            )
        return self.versions

    def _ensure_seed_version(self) -> None:
        """Register the currently served pipeline as v0001 (promoted) when
        the ledger is empty, so every later candidate has a parent."""
        versions = self._require_versions()
        if len(versions) == 0:
            versions.add(self.pipeline, parent_fingerprint=None, status="promoted")

    def refit(self) -> Tuple[VersionInfo, ShadowReport]:
        """Build a candidate from the log, shadow-score it against the
        incumbent, and record it in the ledger (as ``candidate`` — the
        promotion decision stays explicit)."""
        versions = self._require_versions()
        self._ensure_seed_version()
        fit_observations, holdout = self.recalibrator.split(self.log.observations)
        incumbent = self.pipeline
        with self.perf.stage("refit"):
            candidate = self.recalibrator.build_candidate(
                incumbent, fit_observations
            )
        with self.perf.stage("shadow"):
            shadow = self.recalibrator.shadow_evaluate(
                candidate.pipeline, incumbent, holdout
            )
        info = versions.add(
            candidate.pipeline,
            parent_fingerprint=candidate.parent_fingerprint,
            fit_window={
                "start_seq": candidate.fit_start_seq,
                "end_seq": candidate.fit_end_seq,
                "observations": candidate.fit_observations,
                "superseded_seed_records": candidate.superseded_seed_records,
            },
            residuals=self.tracker.to_dict(),
            shadow=shadow.to_dict(),
            status="candidate",
        )
        return info, shadow

    def _activate(self, info: VersionInfo, registry=None) -> VersionInfo:
        """Post-(promote|rollback) bookkeeping shared by both directions:
        swap the serving entry and reset drift state (the residual stream
        now describes a dead generation)."""
        versions = self._require_versions()
        if registry is not None:
            outcome = registry.promote(
                self.name, versions.directory(info.version_id)
            )
            # Duck-typed hook: a fleet supervisor reports its fan-out as a
            # dict, a plain registry returns the swapped entry.
            if isinstance(outcome, dict):
                self.last_promotion = outcome
            elif outcome is not None:
                self.last_promotion = {
                    "pipeline": self.name,
                    "fingerprint": getattr(outcome, "fingerprint", None),
                    "replicas": 1,
                }
        self.detector.reset()
        self.tracker.reset()
        self.skipped = 0
        return info

    def promote(self, version_id: Optional[str] = None, registry=None) -> VersionInfo:
        """Activate a ledger version (default: the newest candidate) and,
        when a registry is given, hot-swap the serving entry."""
        versions = self._require_versions()
        if version_id is None:
            candidates = [
                v for v in versions.history() if v.status == "candidate"
            ]
            if not candidates:
                raise CalibrationError("no candidate version to promote")
            version_id = candidates[-1].version_id
        with self.perf.stage("promote"):
            info = self._activate(versions.promote(version_id), registry)
        if self.metrics is not None:
            self.metrics.promotions += 1
        return info

    def rollback(self, registry=None) -> VersionInfo:
        """Re-promote the previous generation (bad promotion escape hatch)."""
        versions = self._require_versions()
        with self.perf.stage("promote"):
            info = self._activate(versions.rollback(), registry)
        if self.metrics is not None:
            self.metrics.rollbacks += 1
        return info
