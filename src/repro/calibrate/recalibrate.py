"""Refitting against live evidence: candidate models and shadow scoring.

The paper's coefficients come from one construction campaign; when the
platform drifts the campaign is stale.  :func:`merge_with_observations`
builds the refit dataset — seed construction records plus the observed
stream, **newest wins**: an observation at a ``(config, N)`` coordinate
supersedes every seed record at that coordinate, because the observation
is what the platform does *now*.  :class:`Recalibrator` re-runs the
existing least-squares fit over that union through a fresh
:class:`~repro.core.stages.StageGraph` (no new math — the whole point is
that the fit layer is reused verbatim) and scores the candidate against
the incumbent on a held-out tail of the log (:func:`shadow evaluation
<Recalibrator.shadow_evaluate>`), the Oskooi-style guard against
promoting a model that merely memorized its own fit window.

Everything here is deterministic given the log contents: the holdout
split is positional (newest tail), the fit is least squares, and the
candidate's fingerprint is derived from the fitted models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import isfinite
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import EstimationPipeline
from repro.errors import CalibrationError, ReproError
from repro.measure.campaign import CampaignResult
from repro.measure.dataset import Dataset
from repro.calibrate.observations import (
    OBSERVATION_TRIAL_BASE,
    Observation,
)


def merge_with_observations(
    seed: Dataset, observations: Sequence[Observation]
) -> Tuple[Dataset, int]:
    """Union of seed construction data and the observed stream.

    Precedence is *newest wins* twice over: the last observation at a
    ``(config, N)`` coordinate stands for that coordinate, and any seed
    records at an observed coordinate are dropped entirely.  Returns the
    merged dataset and how many seed records were superseded.
    """
    winners: Dict[Tuple[Tuple[int, ...], int], Observation] = {}
    order: List[Tuple[Tuple[int, ...], int]] = []
    for observation in observations:
        coordinate = (observation.record.config_tuple, observation.record.n)
        if coordinate not in winners:
            order.append(coordinate)
        winners[coordinate] = observation
    kept = seed.filter(
        lambda record: (record.config_tuple, record.n) not in winners
    )
    superseded = len(seed) - len(kept)
    merged = Dataset(kept)
    for coordinate in order:
        observation = winners[coordinate]
        merged.add(
            replace(
                observation.record,
                trial=OBSERVATION_TRIAL_BASE + observation.seq,
            )
        )
    return merged, superseded


@dataclass(frozen=True)
class Candidate:
    """A refitted pipeline waiting for shadow evaluation / promotion."""

    pipeline: EstimationPipeline
    fingerprint: str
    parent_fingerprint: str
    fit_start_seq: int
    fit_end_seq: int
    fit_observations: int
    superseded_seed_records: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "parent_fingerprint": self.parent_fingerprint,
            "fit_start_seq": self.fit_start_seq,
            "fit_end_seq": self.fit_end_seq,
            "fit_observations": self.fit_observations,
            "superseded_seed_records": self.superseded_seed_records,
        }


@dataclass(frozen=True)
class ShadowScore:
    """One model's accuracy on the holdout tail."""

    mean_abs_relative_error: float
    scored: int
    skipped: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "mean_abs_relative_error": self.mean_abs_relative_error,
            "scored": self.scored,
            "skipped": self.skipped,
        }


@dataclass(frozen=True)
class ShadowReport:
    """Candidate vs incumbent on the held-out tail of the log."""

    candidate: ShadowScore
    incumbent: ShadowScore
    holdout_size: int

    @property
    def improvement(self) -> float:
        """Absolute error reduction (positive = candidate is better)."""
        return (
            self.incumbent.mean_abs_relative_error
            - self.candidate.mean_abs_relative_error
        )

    @property
    def candidate_wins(self) -> bool:
        return (
            self.candidate.mean_abs_relative_error
            < self.incumbent.mean_abs_relative_error
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate.to_dict(),
            "incumbent": self.incumbent.to_dict(),
            "holdout_size": self.holdout_size,
            "improvement": self.improvement,
            "candidate_wins": self.candidate_wins,
        }

    def describe(self) -> str:
        verdict = "candidate wins" if self.candidate_wins else "incumbent holds"
        return (
            f"shadow eval over {self.holdout_size} held-out observations: "
            f"candidate {self.candidate.mean_abs_relative_error:.4f} vs "
            f"incumbent {self.incumbent.mean_abs_relative_error:.4f} "
            f"mean |rel err| — {verdict}"
        )


def _predict(pipeline: EstimationPipeline, observation: Observation) -> Optional[float]:
    """The model's wall-time prediction for one observed run, or ``None``
    when the observation is outside the model's trustworthy domain."""
    record = observation.record
    try:
        total = float(
            pipeline.estimate_totals(record.config(), [record.n])[0]
        )
    except ReproError:
        return None
    if not isfinite(total) or total <= 0:
        return None
    return total


class Recalibrator:
    """Builds and shadow-scores candidate models from the observation log."""

    def __init__(self, holdout_fraction: float = 0.25):
        if not 0 < holdout_fraction < 1:
            raise CalibrationError(
                f"holdout_fraction must be in (0, 1), got {holdout_fraction}"
            )
        self.holdout_fraction = holdout_fraction

    def split(
        self, observations: Sequence[Observation]
    ) -> Tuple[List[Observation], List[Observation]]:
        """Positional split: the newest tail is held out for shadow
        evaluation, everything before it feeds the refit."""
        if len(observations) < 2:
            raise CalibrationError(
                f"need at least 2 observations to refit with a holdout, "
                f"have {len(observations)}"
            )
        holdout_size = max(1, int(len(observations) * self.holdout_fraction))
        fit = list(observations[:-holdout_size])
        holdout = list(observations[-holdout_size:])
        return fit, holdout

    def build_candidate(
        self,
        source: EstimationPipeline,
        fit_observations: Sequence[Observation],
    ) -> Candidate:
        """Refit the source pipeline's models on seed ∪ observations.

        The candidate is a fresh pipeline over the same spec/plan/config
        whose campaign artifact is the merged dataset; the existing fit
        and compose stages then rebuild the models through the normal
        stage graph.  The source's adjustment is carried over unchanged
        (it captures Mi-dependent systematic error of the *method*, and
        recalibrating it would need fresh ground truth for the whole
        calibration family).
        """
        if not fit_observations:
            raise CalibrationError("refit requires at least one observation")
        parent_fingerprint = source.estimate_cache.fingerprint
        merged, superseded = merge_with_observations(
            source.campaign.dataset, fit_observations
        )
        candidate = EstimationPipeline(source.spec, source.config, plan=source.plan)
        candidate.graph.set(
            "campaign",
            CampaignResult(
                plan_name=source.campaign.plan_name,
                dataset=merged,
                cost_by_kind_and_n=dict(source.campaign.cost_by_kind_and_n),
            ),
        )
        if source.graph.has("evaluation"):
            candidate.graph.set("evaluation", source.evaluation)
        candidate.graph.set("adjust", source.adjustment)
        return Candidate(
            pipeline=candidate,
            fingerprint=candidate.estimate_cache.fingerprint,
            parent_fingerprint=parent_fingerprint,
            fit_start_seq=min(o.seq for o in fit_observations),
            fit_end_seq=max(o.seq for o in fit_observations),
            fit_observations=len(fit_observations),
            superseded_seed_records=superseded,
        )

    def score(
        self,
        pipeline: EstimationPipeline,
        holdout: Sequence[Observation],
    ) -> ShadowScore:
        """Mean absolute relative wall-time error over the holdout."""
        errors: List[float] = []
        skipped = 0
        for observation in holdout:
            predicted = _predict(pipeline, observation)
            if predicted is None:
                skipped += 1
                continue
            observed = observation.record.wall_time_s
            errors.append(abs(predicted - observed) / observed)
        if not errors:
            raise CalibrationError(
                "shadow evaluation scored no observations "
                "(every holdout point is outside the model domain)"
            )
        return ShadowScore(
            mean_abs_relative_error=sum(errors) / len(errors),
            scored=len(errors),
            skipped=skipped,
        )

    def shadow_evaluate(
        self,
        candidate: EstimationPipeline,
        incumbent: EstimationPipeline,
        holdout: Sequence[Observation],
    ) -> ShadowReport:
        """Candidate vs incumbent on the same held-out observations."""
        if not holdout:
            raise CalibrationError("shadow evaluation requires a holdout")
        return ShadowReport(
            candidate=self.score(candidate, holdout),
            incumbent=self.score(incumbent, holdout),
            holdout_size=len(holdout),
        )
