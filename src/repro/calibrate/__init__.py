"""Online calibration: observation ingestion, drift detection, refit,
and model version promotion — the measure→fit→serve loop, closed.

The paper's models are empirical; :mod:`repro.calibrate` keeps them
honest after deployment.  Observed runs stream into an
:class:`ObservationLog`; residuals against the promoted model feed a
deterministic Page–Hinkley :class:`DriftDetector`; on alarm a
:class:`Recalibrator` refits the same least-squares models on seed ∪
observed data, the candidate is shadow-scored on a held-out tail, and a
:class:`ModelVersions` ledger records every generation with explicit
promote/rollback.  :class:`Calibrator` drives the whole loop.
"""

from repro.calibrate.drift import (
    DriftConfig,
    DriftDetector,
    DriftState,
    ResidualStats,
    ResidualTracker,
)
from repro.calibrate.manager import Calibrator, IngestResult
from repro.calibrate.observations import (
    OBSERVATION_TRIAL_BASE,
    Observation,
    ObservationLog,
)
from repro.calibrate.recalibrate import (
    Candidate,
    Recalibrator,
    ShadowReport,
    ShadowScore,
    merge_with_observations,
)
from repro.calibrate.versions import ModelVersions, VersionInfo

__all__ = [
    "OBSERVATION_TRIAL_BASE",
    "Calibrator",
    "Candidate",
    "DriftConfig",
    "DriftDetector",
    "DriftState",
    "IngestResult",
    "ModelVersions",
    "Observation",
    "ObservationLog",
    "Recalibrator",
    "ResidualStats",
    "ResidualTracker",
    "ShadowReport",
    "ShadowScore",
    "VersionInfo",
    "merge_with_observations",
]
