"""Deterministic random-stream derivation.

Reproducibility discipline: a *single* campaign seed must fully determine
every stochastic quantity in a run, and two measurements of *different*
configurations must draw from *independent* streams (so adding a
configuration to a campaign never perturbs existing measurements).

:func:`stream` derives a :class:`numpy.random.Generator` from a root seed
plus an arbitrary tuple of hashable key parts (configuration labels, problem
sizes, phase names).  Key parts are folded into the seed via SHA-256, giving
stable streams across processes and Python versions (``hash()`` is salted
per-process and must not be used for this).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np


def _fold_keys(keys: Iterable[object]) -> int:
    digest = hashlib.sha256()
    for key in keys:
        digest.update(repr(key).encode("utf-8"))
        digest.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(digest.digest()[:8], "big")


def stream(seed: int, *keys: object) -> np.random.Generator:
    """Return an independent generator for ``(seed, *keys)``.

    The same arguments always yield a generator producing the same sequence;
    distinct key tuples yield statistically independent streams.
    """
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, _fold_keys(keys)]))


def spawn_seed(seed: int, *keys: object) -> int:
    """Derive a child integer seed for APIs that want an ``int`` seed."""
    return _fold_keys((seed, *keys))
