"""Workload-generic phase vectors and their wire-format dispatch.

The paper's method never looks inside an application — it only needs each
measurement split into named *phases* and a grouping of those phases into
computation (``Ta``) and communication (``Tc``).  For HPL that vector is
:class:`repro.hpl.timing.PhaseTimes` (six fields, paper Figure 4); other
workload families carry their own decomposition (sample-sort has
partition/scatter/local_sort/merge, synchronous Monte Carlo has
sweep/barrier/rebalance).

:class:`PhaseVector` is the shared behavior: a frozen dataclass subclass
lists its float fields, sets ``PHASE_NAMES`` / ``COMPUTE_PHASES`` /
``COMM_PHASES`` as (unannotated) class attributes, and inherits the
validation, the Ta/Tc grouping, the algebra and the dict round-trip that
:class:`~repro.hpl.timing.PhaseTimes` defines for HPL — so every layer
that consumes ``phases.ta`` / ``phases.tc`` / ``phases.as_dict()`` works
unchanged on any family.

:func:`phases_from_dict` is the deserialization dispatcher: each phase
class registers its *exact* field-name set (:func:`register_phases`), and
a serialized ``{"partition": ..., "scatter": ...}`` mapping routes to the
class whose schema matches.  Key sets that match no registered schema but
are a subset of HPL's phase names fall back to
:class:`~repro.hpl.timing.PhaseTimes` (missing fields default to 0.0) —
exactly the permissive read the pre-workload datasets relied on, so every
old artifact keeps loading bit-identically.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, Mapping, Tuple, Type

import numpy as np

from repro.errors import MeasurementError, SimulationError
from repro.hpl.timing import PHASE_NAMES as HPL_PHASE_NAMES
from repro.hpl.timing import PhaseTimes


class PhaseVector:
    """Base for per-workload phase breakdowns.

    Subclasses are frozen dataclasses whose float fields *are* the phases;
    they set three unannotated class attributes:

    * ``PHASE_NAMES`` — the fields, in serialization order;
    * ``COMPUTE_PHASES`` — the subset summed into ``ta``;
    * ``COMM_PHASES`` — the subset summed into ``tc``.

    The two subsets must partition ``PHASE_NAMES`` so the identity
    ``total == ta + tc`` holds exactly, as it does for HPL.
    """

    PHASE_NAMES: Tuple[str, ...] = ()
    COMPUTE_PHASES: Tuple[str, ...] = ()
    COMM_PHASES: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not np.isfinite(value) or value < 0:
                raise SimulationError(f"phase {f.name} has invalid time {value!r}")

    # -- paper groupings ----------------------------------------------------

    @property
    def ta(self) -> float:
        """Computation time (the workload's compute-phase sum)."""
        return sum(getattr(self, name) for name in self.COMPUTE_PHASES)

    @property
    def tc(self) -> float:
        """Communication time (the workload's comm-phase sum)."""
        return sum(getattr(self, name) for name in self.COMM_PHASES)

    @property
    def total(self) -> float:
        return self.ta + self.tc

    # -- algebra ------------------------------------------------------------

    def __add__(self, other: "PhaseVector") -> "PhaseVector":
        return type(self)(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in self.PHASE_NAMES
            }
        )

    def scaled(self, factor: float) -> "PhaseVector":
        if factor < 0:
            raise SimulationError(f"negative scale factor {factor}")
        return type(self)(
            **{name: getattr(self, name) * factor for name in self.PHASE_NAMES}
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.PHASE_NAMES}

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "PhaseVector":
        unknown = set(data) - set(cls.PHASE_NAMES)
        if unknown:
            raise SimulationError(f"unknown phases: {sorted(unknown)}")
        return cls(**{name: float(data.get(name, 0.0)) for name in cls.PHASE_NAMES})

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray], index: int) -> "PhaseVector":
        """Extract process ``index`` from per-phase arrays (simulator output)."""
        return cls(**{name: float(arrays[name][index]) for name in cls.PHASE_NAMES})


# -- wire-format dispatch -----------------------------------------------------

#: Exact field-name set -> phase class.  HPL's :class:`PhaseTimes` is
#: registered below even though it predates (and does not subclass)
#: :class:`PhaseVector` — it already satisfies the same duck interface.
_PHASE_SCHEMAS: Dict[frozenset, Type] = {frozenset(HPL_PHASE_NAMES): PhaseTimes}


def register_phases(cls):
    """Class decorator: make a phase vector deserializable by schema.

    The frozenset of ``PHASE_NAMES`` is the dispatch key — two workloads
    may not share an identical field-name set (the serialized mapping
    would be ambiguous).
    """
    key = frozenset(cls.PHASE_NAMES)
    if not key:
        raise MeasurementError(f"{cls.__name__} declares no PHASE_NAMES")
    registered = _PHASE_SCHEMAS.get(key)
    if registered is not None and registered is not cls:
        raise MeasurementError(
            f"phase schema {sorted(key)} already registered by "
            f"{registered.__name__}"
        )
    compute, comm = set(cls.COMPUTE_PHASES), set(cls.COMM_PHASES)
    if compute | comm != set(cls.PHASE_NAMES) or compute & comm:
        raise MeasurementError(
            f"{cls.__name__}: COMPUTE_PHASES and COMM_PHASES must "
            f"partition PHASE_NAMES"
        )
    _PHASE_SCHEMAS[key] = cls
    return cls


def registered_phase_schemas() -> Tuple[Tuple[str, ...], ...]:
    """The known schemas as sorted name tuples (for error messages)."""
    return tuple(sorted(tuple(sorted(key)) for key in _PHASE_SCHEMAS))


def phases_from_dict(data: Mapping[str, float]):
    """Reconstruct the right phase class from a serialized mapping.

    Exact schema match wins; a strict subset of HPL's phase names keeps
    the historical permissive :class:`PhaseTimes` read (missing fields are
    0.0), so pre-workload datasets deserialize unchanged.
    """
    key = frozenset(data)
    cls = _PHASE_SCHEMAS.get(key)
    if cls is not None:
        return cls.from_dict(data)
    if key <= frozenset(HPL_PHASE_NAMES):
        return PhaseTimes.from_dict(data)
    raise MeasurementError(
        f"phase mapping {sorted(key)} matches no registered workload schema "
        f"(known: {', '.join('/'.join(s) for s in registered_phase_schemas())})"
    )
