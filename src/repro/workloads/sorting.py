"""Heterogeneous parallel sample-sort (after Cérin et al., cs/0607041).

The second workload family: sort ``N`` thousand 64-bit keys spread evenly
over ``P`` heterogeneous processes.  The algorithm is the classic
four-phase sample-sort, made heterogeneity-aware the way Cérin et al.
partition data — splitters are chosen so that each process receives a key
share *proportional to its measured speed*, not ``1/P``:

1. ``partition`` (compute): sample, agree on ``P - 1`` splitters, and
   bucket-classify the local keys (one binary search per key).
2. ``scatter`` (communication): all-to-all — every process ships each
   bucket to its owner; message sizes follow the speed-proportional
   shares, and link costs follow placement (intranode vs network).
3. ``local_sort`` (compute): sort the received keys, ``O(k log k)``.
4. ``merge`` (compute): merge the ``P`` sorted runs received.

Each phase ends at a barrier (bulk-synchronous), so per-run wall time is
the sum of per-phase maxima.  Execution time is driven by *data volume*:
compute phases scale like ``N log N`` and the scatter like ``N`` bytes,
giving the family an N-T structure genuinely different from HPL's
``N^3`` — which is exactly what the generalization claim needs to cover.

Determinism matches HPL: one ``(seed, "sorting-run", config, N, trial)``
stream fully determines a measurement, the scalar runner is the batch
runner applied to one size (bit-identical by construction), and
:func:`simulate_sorting_reference` is the straight-line scalar
re-implementation the vectorized kernel is tested and benchmarked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.measure.campaign import BATCH_RUNNERS
from repro.measure.grids import (
    CampaignPlan,
    PAPER_KINDS,
    construction_configs,
    evaluation_configs,
)
from repro.units import GFLOPS
from repro.workloads.base import (
    Workload,
    WorkloadResult,
    noise_rows,
    normalize_trials,
    register_workload,
)
from repro.workloads.phases import PhaseVector, register_phases

#: Problem "order" N counts kilo-keys; 64-bit keys.
KEYS_PER_UNIT = 1000.0
KEY_BYTES = 8.0
#: Flop-equivalents per key: bucket classification per splitter level,
#: comparison sort, and P-way merge per level.
PARTITION_OPS = 6.0
SORT_OPS = 14.0
MERGE_OPS = 4.0

SORTING_CONSTRUCTION_SIZES = (500, 750, 1000, 1500, 2000, 3000, 4000, 6000, 8000)
SORTING_EVALUATION_SIZES = (4000, 6000, 8000, 10000, 12000)
SORTING_NL_CONSTRUCTION_SIZES = (2000, 4000, 6000, 8000)
SORTING_NS_CONSTRUCTION_SIZES = (500, 1000, 1500, 2000)
SORTING_NL_NS_EVALUATION_SIZES = (2000, 4000, 6000, 8000, 10000, 12000)


@register_phases
@dataclass(frozen=True)
class SortingPhases(PhaseVector):
    """Per-process phase breakdown of one sample-sort run."""

    partition: float
    scatter: float
    local_sort: float
    merge: float

    PHASE_NAMES = ("partition", "scatter", "local_sort", "merge")
    COMPUTE_PHASES = ("partition", "local_sort", "merge")
    COMM_PHASES = ("scatter",)


def sorting_benchmark_flops(n: int) -> float:
    """Nominal operation count reported as 'Gflops': comparisons of an
    ideal ``N log N`` sort of the full key set."""
    if n < 1:
        raise SimulationError(f"problem order must be >= 1, got {n}")
    keys = float(n) * KEYS_PER_UNIT
    return keys * np.log2(keys) * SORT_OPS


def _placement_arrays(spec: ClusterSpec, config: ClusterConfig):
    """Per-rank static properties of a placement (vectorized inputs)."""
    slots = place_processes(spec, config)
    peak = np.array([s.kind.peak_gflops for s in slots])
    ramp = np.array([s.kind.ramp_n for s in slots])
    floor = np.array([s.kind.efficiency_floor for s in slots])
    procs = np.array([float(s.co_resident) for s in slots])
    oversub = np.array([s.kind.oversub_factor(s.co_resident) for s in slots])
    overhead = np.array([s.kind.step_overhead(s.co_resident) for s in slots])
    node = np.array([s.node_index for s in slots])
    return slots, peak, ramp, floor, procs, oversub, overhead, node


def _rates(sizes: np.ndarray, peak, ramp, floor, procs, oversub) -> np.ndarray:
    """Per-(size, rank) sustained process rates in flops/s.

    Element-wise replication of :meth:`repro.cluster.pe.PEKind.process_rate`
    (efficiency ramp, oversubscription factor, per-process share).
    """
    eff = np.clip(sizes[:, None] / ramp[None, :], floor[None, :], 1.0)
    return peak[None, :] * GFLOPS * eff * oversub[None, :] / procs[None, :]


def simulate_sorting_batch(
    spec: ClusterSpec,
    config: ClusterConfig,
    sizes: Sequence[int],
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> List[WorkloadResult]:
    """Vectorized sample-sort walk: all sizes of one config in one shot.

    ``compute_noise`` / ``comm_noise`` are ``(S, P)`` per-run factor rows
    (or ``None`` for bit-exact determinism), exactly as the HPL batched
    walker takes them.
    """
    ns = [int(n) for n in sizes]
    if any(n < 1 for n in ns):
        raise SimulationError(f"problem orders must be >= 1, got {ns}")
    slots, peak, ramp, floor, procs, oversub, overhead, node = _placement_arrays(
        spec, config
    )
    p = len(slots)
    s_arr = np.asarray(ns, dtype=float)
    keys_total = s_arr * KEYS_PER_UNIT  # (S,)

    f_comp = np.ones((len(ns), p)) if compute_noise is None else np.asarray(compute_noise)
    f_comm = np.ones((len(ns), p)) if comm_noise is None else np.asarray(comm_noise)

    rate = _rates(s_arr, peak, ramp, floor, procs, oversub)  # (S, P)
    share = rate / rate.sum(axis=1, keepdims=True)  # speed-proportional
    local0 = keys_total[:, None] / p  # even initial distribution
    recv = keys_total[:, None] * share  # keys owned after scatter

    log_p = np.log2(p) if p > 1 else 0.0

    # partition: sample + one binary search per initially-held key.
    t_partition = (
        local0 * PARTITION_OPS * (1.0 + log_p) / rate + overhead[None, :]
    ) * f_comp

    # scatter: all-to-all; the message to destination d carries d's share
    # of the sender's keys, over the placement's intranode/network links.
    if p > 1:
        dest_bytes = local0 * share * KEY_BYTES  # (S, P): bytes to dest d
        msg_net = np.asarray(spec.network.message_time(dest_bytes), dtype=float)
        msg_intra = np.asarray(spec.intranode.message_time(dest_bytes), dtype=float)
        same_node = node[:, None] == node[None, :]
        off_diag = ~np.eye(p, dtype=bool)
        # Per-rank column sums (not a matmul): the reduction order must not
        # depend on the batch size, or scalar and batched runs drift in the
        # last ulp.
        t_scatter = np.empty((len(ns), p))
        for r in range(p):
            net_mask = ~same_node[r]
            intra_mask = same_node[r] & off_diag[r]
            t_scatter[:, r] = (
                msg_net[:, net_mask].sum(axis=1)
                + msg_intra[:, intra_mask].sum(axis=1)
            )
        t_scatter *= f_comm
    else:
        t_scatter = np.zeros((len(ns), p))

    # local sort of the received keys: O(k log k).
    t_local_sort = (
        recv * SORT_OPS * np.log2(np.maximum(recv, 2.0)) / rate
    ) * f_comp

    # merge the P sorted runs: one comparison level per doubling.
    t_merge = (recv * MERGE_OPS * log_p / rate + overhead[None, :]) * f_comp

    # Bulk-synchronous: a barrier after every phase.
    wall = (
        t_partition.max(axis=1)
        + t_scatter.max(axis=1)
        + t_local_sort.max(axis=1)
        + t_merge.max(axis=1)
    )

    rank_kinds = [slot.kind.name for slot in slots]
    results = []
    for i, n in enumerate(ns):
        results.append(
            WorkloadResult(
                spec_name=spec.name,
                config=config,
                n=n,
                wall_time_s=float(wall[i]),
                phase_arrays={
                    "partition": t_partition[i].copy(),
                    "scatter": t_scatter[i].copy(),
                    "local_sort": t_local_sort[i].copy(),
                    "merge": t_merge[i].copy(),
                },
                rank_kinds=rank_kinds,
                phase_class=SortingPhases,
                benchmark_flops=sorting_benchmark_flops(n),
            )
        )
    return results


def simulate_sorting_reference(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> WorkloadResult:
    """Straight-line scalar sample-sort walk (tests + benchmark baseline).

    Computes the same quantities as :func:`simulate_sorting_batch` with
    plain Python loops over ranks; the batch kernel is asserted allclose
    against this and benchmarked (>= 5x) against it.
    """
    if n < 1:
        raise SimulationError(f"problem order must be >= 1, got {n}")
    slots = place_processes(spec, config)
    p = len(slots)
    f_comp = [1.0] * p if compute_noise is None else [float(v) for v in compute_noise]
    f_comm = [1.0] * p if comm_noise is None else [float(v) for v in comm_noise]

    keys_total = float(n) * KEYS_PER_UNIT
    rates = [slot.kind.process_rate(n, slot.co_resident) for slot in slots]
    total_rate = sum(rates)
    share = [r / total_rate for r in rates]
    local0 = keys_total / p
    log_p = float(np.log2(p)) if p > 1 else 0.0

    partition, scatter, local_sort, merge = [], [], [], []
    for r, slot in enumerate(slots):
        overhead = slot.kind.step_overhead(slot.co_resident)
        partition.append(
            (local0 * PARTITION_OPS * (1.0 + log_p) / rates[r] + overhead) * f_comp[r]
        )
        t_sc = 0.0
        for d in range(p):
            if d == r:
                continue
            nbytes = local0 * share[d] * KEY_BYTES
            if slots[r].same_node(slots[d]):
                t_sc += float(spec.intranode.message_time(nbytes))
            else:
                t_sc += float(spec.network.message_time(nbytes))
        scatter.append(t_sc * f_comm[r])
        recv = keys_total * share[r]
        local_sort.append(
            recv * SORT_OPS * float(np.log2(max(recv, 2.0))) / rates[r] * f_comp[r]
        )
        merge.append((recv * MERGE_OPS * log_p / rates[r] + overhead) * f_comp[r])

    wall = max(partition) + max(scatter) + max(local_sort) + max(merge)
    return WorkloadResult(
        spec_name=spec.name,
        config=config,
        n=int(n),
        wall_time_s=wall,
        phase_arrays={
            "partition": np.array(partition),
            "scatter": np.array(scatter),
            "local_sort": np.array(local_sort),
            "merge": np.array(merge),
        },
        rank_kinds=[slot.kind.name for slot in slots],
        phase_class=SortingPhases,
        benchmark_flops=sorting_benchmark_flops(int(n)),
    )


def run_sorting_batch(
    spec: ClusterSpec,
    config: ClusterConfig,
    ns: Sequence[int],
    params=None,
    noise=None,
    seed: int = 0,
    trial: Union[int, Sequence[int]] = 0,
) -> List[WorkloadResult]:
    """Batched sorting runner (``run_hpl_batch``-shaped).

    ``params`` is accepted for signature compatibility and ignored — the
    family has no HPL-style tuning block.
    """
    sizes = [int(n) for n in ns]
    trials = normalize_trials(sizes, trial)
    compute_rows, comm_rows = noise_rows(
        "sorting-run", config, sizes, trials, noise, seed
    )
    return simulate_sorting_batch(
        spec, config, sizes, compute_noise=compute_rows, comm_noise=comm_rows
    )


def run_sorting(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params=None,
    noise=None,
    seed: int = 0,
    trial: int = 0,
) -> WorkloadResult:
    """Scalar sorting runner: the batch runner applied to one size, so
    scalar and batched measurements are bit-identical by construction."""
    return run_sorting_batch(
        spec, config, [n], params=params, noise=noise, seed=seed, trial=trial
    )[0]


BATCH_RUNNERS[run_sorting] = run_sorting_batch


def _sorting_plan(
    name: str,
    construction_sizes,
    evaluation_sizes,
    pentium2_pes=tuple(range(1, 9)),
) -> CampaignPlan:
    return CampaignPlan(
        name=name,
        kinds=PAPER_KINDS,
        construction_sizes=construction_sizes,
        construction_configs=tuple(construction_configs(pentium2_pes=pentium2_pes)),
        evaluation_sizes=evaluation_sizes,
        evaluation_configs=tuple(evaluation_configs()),
    )


@register_workload("sorting")
class SortingWorkload(Workload):
    """Heterogeneous parallel sample-sort."""

    display = "heterogeneous parallel sample-sort"
    phase_class = SortingPhases

    def runner(self):
        return run_sorting

    def batch_runner(self):
        return run_sorting_batch

    def plan(self, protocol: str) -> CampaignPlan:
        if protocol == "basic":
            return _sorting_plan(
                "basic", SORTING_CONSTRUCTION_SIZES, SORTING_EVALUATION_SIZES
            )
        if protocol == "nl":
            return _sorting_plan(
                "nl",
                SORTING_NL_CONSTRUCTION_SIZES,
                SORTING_NL_NS_EVALUATION_SIZES,
                pentium2_pes=(1, 2, 4, 8),
            )
        if protocol == "ns":
            return _sorting_plan(
                "ns",
                SORTING_NS_CONSTRUCTION_SIZES,
                SORTING_NL_NS_EVALUATION_SIZES,
                pentium2_pes=(1, 2, 4, 8),
            )
        raise SimulationError(
            f"unknown protocol {protocol!r} for sorting; have ['basic', 'nl', 'ns']"
        )

    def memory_ratio(self, spec, config, n, kind_name, footprint=1.0):
        """Worst-node pressure of the key buffers (keys + receive buffer)."""
        alloc = config.allocation(kind_name)
        nodes = spec.nodes_of_kind(kind_name)
        if alloc.pe_count == 0 or not nodes:
            return 0.0
        per_process = (
            float(n) * KEYS_PER_UNIT * KEY_BYTES * 2.0 * footprint
        ) / config.total_processes
        worst = 0.0
        remaining = alloc.pe_count
        for node in nodes:
            used_cpus = min(node.cpus, remaining)
            if used_cpus <= 0:
                break
            remaining -= used_cpus
            procs_on_node = used_cpus * alloc.procs_per_pe
            worst = max(worst, per_process * procs_on_node / node.usable_memory_bytes)
        return worst
