"""Synchronous Monte Carlo with dynamic load balancing (after Altevogt &
Linke, hep-lat/9310021).

The third workload family: a fixed number of synchronous MC sweeps over
``N`` hundred lattice sites, distributed over ``P`` heterogeneous
processes.  Each iteration:

1. ``sweep`` (compute): every process updates its chunk of the lattice.
2. ``barrier`` (communication): a global synchronization — fast processes
   *wait* for the slowest, plus a ``log2(P)``-deep combine over the
   network.  This is where heterogeneity hurts: with static ``1/P``
   chunks the barrier wait is the whole imbalance.
3. ``rebalance`` (communication): the dynamic load balancer moves lattice
   state toward speed-proportional chunks (geometric approach with gain
   ``REBALANCE_GAIN`` per iteration, as Altevogt & Linke shift spins
   between their heterogeneous workstations), paying for the moved bytes.

Chunk fractions start at ``1/P`` and converge toward each process's speed
share, so early iterations are imbalance-dominated and late ones
balanced — the time structure the estimation models must capture.  Wall
time accumulates per-iteration maxima (the barrier makes every iteration
bulk-synchronous).

Determinism matches HPL: one ``(seed, "montecarlo-run", config, N,
trial)`` stream per measurement; the scalar runner is the batch runner on
one size; :func:`simulate_montecarlo_reference` is the plain-Python
baseline the vectorized kernel is verified and benchmarked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.spec import ClusterSpec
from repro.errors import SimulationError
from repro.measure.campaign import BATCH_RUNNERS
from repro.measure.grids import (
    CampaignPlan,
    PAPER_KINDS,
    construction_configs,
    evaluation_configs,
)
from repro.workloads.base import (
    Workload,
    WorkloadResult,
    noise_rows,
    normalize_trials,
    register_workload,
)
from repro.workloads.phases import PhaseVector, register_phases
from repro.workloads.sorting import _placement_arrays, _rates

#: Problem "order" N counts hundreds of lattice sites.
SITES_PER_UNIT = 100.0
#: Flop-equivalents per site per sweep (neighbour gather + accept/reject).
SWEEP_OPS = 400.0
#: Bytes of state per lattice site (spin + cached energies).
STATE_BYTES = 48.0
#: Synchronous sweeps per run.
MC_ITERATIONS = 24
#: Fraction of the chunk imbalance the balancer removes per iteration.
REBALANCE_GAIN = 0.5
#: Payload of one barrier combine message.
BARRIER_BYTES = 64.0


@register_phases
@dataclass(frozen=True)
class MonteCarloPhases(PhaseVector):
    """Per-process phase breakdown of one synchronous MC run."""

    sweep: float
    barrier: float
    rebalance: float

    PHASE_NAMES = ("sweep", "barrier", "rebalance")
    COMPUTE_PHASES = ("sweep",)
    COMM_PHASES = ("barrier", "rebalance")


def montecarlo_benchmark_flops(n: int) -> float:
    """Nominal operation count reported as 'Gflops': site updates over
    all synchronous sweeps."""
    if n < 1:
        raise SimulationError(f"problem order must be >= 1, got {n}")
    return float(n) * SITES_PER_UNIT * SWEEP_OPS * MC_ITERATIONS


def simulate_montecarlo_batch(
    spec: ClusterSpec,
    config: ClusterConfig,
    sizes: Sequence[int],
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> List[WorkloadResult]:
    """Vectorized synchronous-MC walk: all sizes of one config at once.

    The iteration loop (a fixed, small ``MC_ITERATIONS``) stays in
    Python; everything inside it is array arithmetic over the
    ``(S, P)`` size x rank grid.
    """
    ns = [int(n) for n in sizes]
    if any(n < 1 for n in ns):
        raise SimulationError(f"problem orders must be >= 1, got {ns}")
    slots, peak, ramp, floor, procs, oversub, overhead, node = _placement_arrays(
        spec, config
    )
    p = len(slots)
    s_arr = np.asarray(ns, dtype=float)
    sites = s_arr * SITES_PER_UNIT  # (S,)

    f_comp = np.ones((len(ns), p)) if compute_noise is None else np.asarray(compute_noise)
    f_comm = np.ones((len(ns), p)) if comm_noise is None else np.asarray(comm_noise)

    rate = _rates(s_arr, peak, ramp, floor, procs, oversub)  # (S, P)
    speed_share = rate / rate.sum(axis=1, keepdims=True)

    if p > 1:
        barrier_latency = float(np.log2(p)) * float(
            spec.network.message_time(BARRIER_BYTES)
        )
    else:
        barrier_latency = 0.0

    chunk = np.full((len(ns), p), 1.0 / p)
    t_sweep = np.zeros((len(ns), p))
    t_barrier = np.zeros((len(ns), p))
    t_rebalance = np.zeros((len(ns), p))
    wall = np.zeros(len(ns))

    for _ in range(MC_ITERATIONS):
        step = (
            chunk * sites[:, None] * SWEEP_OPS / rate + overhead[None, :]
        ) * f_comp
        t_sweep += step
        slowest = step.max(axis=1)  # (S,)
        wait = (slowest[:, None] - step) + barrier_latency * f_comm
        t_barrier += wait
        wall += slowest + (barrier_latency * f_comm).max(axis=1)

        # Dynamic balancing: move a REBALANCE_GAIN fraction of the gap to
        # the speed-proportional target; moved state crosses the network.
        delta = REBALANCE_GAIN * (speed_share - chunk)
        moved_bytes = np.abs(delta) * sites[:, None] * STATE_BYTES
        reb = (
            np.asarray(spec.network.message_time(moved_bytes), dtype=float) * f_comm
            if p > 1
            else np.zeros((len(ns), p))
        )
        t_rebalance += reb
        wall += reb.max(axis=1)
        chunk = chunk + delta

    rank_kinds = [slot.kind.name for slot in slots]
    results = []
    for i, n in enumerate(ns):
        results.append(
            WorkloadResult(
                spec_name=spec.name,
                config=config,
                n=n,
                wall_time_s=float(wall[i]),
                phase_arrays={
                    "sweep": t_sweep[i].copy(),
                    "barrier": t_barrier[i].copy(),
                    "rebalance": t_rebalance[i].copy(),
                },
                rank_kinds=rank_kinds,
                phase_class=MonteCarloPhases,
                benchmark_flops=montecarlo_benchmark_flops(n),
            )
        )
    return results


def simulate_montecarlo_reference(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    compute_noise: Optional[np.ndarray] = None,
    comm_noise: Optional[np.ndarray] = None,
) -> WorkloadResult:
    """Straight-line scalar MC walk (tests + benchmark baseline)."""
    if n < 1:
        raise SimulationError(f"problem order must be >= 1, got {n}")
    slots = place_processes(spec, config)
    p = len(slots)
    f_comp = [1.0] * p if compute_noise is None else [float(v) for v in compute_noise]
    f_comm = [1.0] * p if comm_noise is None else [float(v) for v in comm_noise]

    sites = float(n) * SITES_PER_UNIT
    rates = [slot.kind.process_rate(n, slot.co_resident) for slot in slots]
    overheads = [slot.kind.step_overhead(slot.co_resident) for slot in slots]
    total_rate = sum(rates)
    speed_share = [r / total_rate for r in rates]
    barrier_latency = (
        float(np.log2(p)) * float(spec.network.message_time(BARRIER_BYTES))
        if p > 1
        else 0.0
    )

    chunk = [1.0 / p] * p
    t_sweep = [0.0] * p
    t_barrier = [0.0] * p
    t_rebalance = [0.0] * p
    wall = 0.0
    for _ in range(MC_ITERATIONS):
        step = [
            (chunk[r] * sites * SWEEP_OPS / rates[r] + overheads[r]) * f_comp[r]
            for r in range(p)
        ]
        slowest = max(step)
        for r in range(p):
            t_sweep[r] += step[r]
            t_barrier[r] += (slowest - step[r]) + barrier_latency * f_comm[r]
        wall += slowest + max(barrier_latency * f_comm[r] for r in range(p))

        deltas = [REBALANCE_GAIN * (speed_share[r] - chunk[r]) for r in range(p)]
        rebs = []
        for r in range(p):
            moved = abs(deltas[r]) * sites * STATE_BYTES
            reb = (
                float(spec.network.message_time(moved)) * f_comm[r] if p > 1 else 0.0
            )
            t_rebalance[r] += reb
            rebs.append(reb)
            chunk[r] += deltas[r]
        wall += max(rebs)

    return WorkloadResult(
        spec_name=spec.name,
        config=config,
        n=int(n),
        wall_time_s=wall,
        phase_arrays={
            "sweep": np.array(t_sweep),
            "barrier": np.array(t_barrier),
            "rebalance": np.array(t_rebalance),
        },
        rank_kinds=[slot.kind.name for slot in slots],
        phase_class=MonteCarloPhases,
        benchmark_flops=montecarlo_benchmark_flops(int(n)),
    )


def run_montecarlo_batch(
    spec: ClusterSpec,
    config: ClusterConfig,
    ns: Sequence[int],
    params=None,
    noise=None,
    seed: int = 0,
    trial: Union[int, Sequence[int]] = 0,
) -> List[WorkloadResult]:
    """Batched MC runner (``run_hpl_batch``-shaped; ``params`` ignored)."""
    sizes = [int(n) for n in ns]
    trials = normalize_trials(sizes, trial)
    compute_rows, comm_rows = noise_rows(
        "montecarlo-run", config, sizes, trials, noise, seed
    )
    return simulate_montecarlo_batch(
        spec, config, sizes, compute_noise=compute_rows, comm_noise=comm_rows
    )


def run_montecarlo(
    spec: ClusterSpec,
    config: ClusterConfig,
    n: int,
    params=None,
    noise=None,
    seed: int = 0,
    trial: int = 0,
) -> WorkloadResult:
    """Scalar MC runner: the batch runner applied to one size."""
    return run_montecarlo_batch(
        spec, config, [n], params=params, noise=noise, seed=seed, trial=trial
    )[0]


BATCH_RUNNERS[run_montecarlo] = run_montecarlo_batch

MC_CONSTRUCTION_SIZES = (512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192)
MC_EVALUATION_SIZES = (2048, 4096, 6144, 8192, 10240)
MC_NL_CONSTRUCTION_SIZES = (2048, 4096, 6144, 8192)
MC_NS_CONSTRUCTION_SIZES = (512, 1024, 1536, 2048)
MC_NL_NS_EVALUATION_SIZES = (1024, 2048, 4096, 6144, 8192, 10240)


def _mc_plan(
    name: str,
    construction_sizes,
    evaluation_sizes,
    pentium2_pes=tuple(range(1, 9)),
) -> CampaignPlan:
    return CampaignPlan(
        name=name,
        kinds=PAPER_KINDS,
        construction_sizes=construction_sizes,
        construction_configs=tuple(construction_configs(pentium2_pes=pentium2_pes)),
        evaluation_sizes=evaluation_sizes,
        evaluation_configs=tuple(evaluation_configs()),
    )


@register_workload("montecarlo")
class MonteCarloWorkload(Workload):
    """Synchronous Monte Carlo sweeps with dynamic load balancing."""

    display = "synchronous Monte Carlo with dynamic rebalancing"
    phase_class = MonteCarloPhases

    def runner(self):
        return run_montecarlo

    def batch_runner(self):
        return run_montecarlo_batch

    def plan(self, protocol: str) -> CampaignPlan:
        if protocol == "basic":
            return _mc_plan("basic", MC_CONSTRUCTION_SIZES, MC_EVALUATION_SIZES)
        if protocol == "nl":
            return _mc_plan(
                "nl",
                MC_NL_CONSTRUCTION_SIZES,
                MC_NL_NS_EVALUATION_SIZES,
                pentium2_pes=(1, 2, 4, 8),
            )
        if protocol == "ns":
            return _mc_plan(
                "ns",
                MC_NS_CONSTRUCTION_SIZES,
                MC_NL_NS_EVALUATION_SIZES,
                pentium2_pes=(1, 2, 4, 8),
            )
        raise SimulationError(
            f"unknown protocol {protocol!r} for montecarlo; have ['basic', 'nl', 'ns']"
        )
