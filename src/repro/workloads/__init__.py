"""Pluggable workload families.

Importing this package registers the built-in families (``hpl``,
``sorting``, ``montecarlo``) and their phase schemas; everything the rest
of the library needs is re-exported here.
"""

from repro.workloads.base import (
    Workload,
    WorkloadResult,
    create_workload,
    iter_workloads,
    register_workload,
    registered_workloads,
)
from repro.workloads.phases import (
    PhaseVector,
    phases_from_dict,
    register_phases,
    registered_phase_schemas,
)
from repro.workloads.hpl import HPLWorkload
from repro.workloads.montecarlo import (
    MonteCarloPhases,
    MonteCarloWorkload,
    run_montecarlo,
    run_montecarlo_batch,
)
from repro.workloads.sorting import (
    SortingPhases,
    SortingWorkload,
    run_sorting,
    run_sorting_batch,
)

__all__ = [
    "HPLWorkload",
    "MonteCarloPhases",
    "MonteCarloWorkload",
    "PhaseVector",
    "SortingPhases",
    "SortingWorkload",
    "Workload",
    "WorkloadResult",
    "create_workload",
    "iter_workloads",
    "phases_from_dict",
    "register_phases",
    "register_workload",
    "registered_phase_schemas",
    "registered_workloads",
    "run_montecarlo",
    "run_montecarlo_batch",
    "run_sorting",
    "run_sorting_batch",
]
