"""The type-tagged :class:`Workload` protocol and its registry.

A *workload family* bundles everything the estimation pipeline needs to
know about one phase-structured parallel application:

* the deterministic simulator entry points (scalar + vectorized batch
  runner, same signatures as :func:`repro.hpl.driver.run_hpl` /
  :func:`~repro.hpl.driver.run_hpl_batch`);
* the phase decomposition used for fitting (a phase-vector class, see
  :mod:`repro.workloads.phases`);
* the measurement-grid shape (a :class:`~repro.measure.grids.CampaignPlan`
  per protocol name);
* the memory-footprint model feeding the memory guard;
* the per-workload grid-kernel estimator hook used by the search stage.

Tags are serializable strings stored in pipeline artifacts and served
requests.  The registry mirrors the PR-2 model registry
(:mod:`repro.core.model_api`) and the PR-7 search registry:
``@register_workload("tag")`` on the class, :func:`create_workload` to
resolve, unknown tags raise :class:`~repro.errors.ModelError` naming the
known tags.  Unlike model classes, workloads are stateless singletons —
the registry stores one shared instance per tag.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, Type

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.errors import ModelError, SimulationError
from repro.measure.grids import CampaignPlan
from repro.rng import stream

_WORKLOADS: Dict[str, "Workload"] = {}


def register_workload(tag: str) -> Callable[[Type["Workload"]], Type["Workload"]]:
    """Class decorator registering a :class:`Workload` under ``tag``.

    Sets ``cls.tag`` and stores a singleton instance.  Re-registering the
    same class is a no-op (idempotent re-imports); a different class under
    an existing tag is an error.
    """

    def decorate(cls: Type["Workload"]) -> Type["Workload"]:
        existing = _WORKLOADS.get(tag)
        if existing is not None and type(existing) is not cls:
            raise ModelError(f"workload tag {tag!r} already registered")
        cls.tag = tag
        _WORKLOADS[tag] = cls()
        return cls

    return decorate


def create_workload(tag: str) -> "Workload":
    """Resolve a workload tag to its shared instance.

    Raises :class:`~repro.errors.ModelError` for unknown tags, listing
    what *is* registered — the error a stale artifact or a typoed
    ``--workload`` surfaces as.
    """
    try:
        return _WORKLOADS[tag]
    except KeyError:
        known = ", ".join(sorted(_WORKLOADS)) or "none"
        raise ModelError(f"unknown workload {tag!r} (known: {known})") from None


def registered_workloads() -> Tuple[str, ...]:
    """Sorted tuple of registered workload tags."""
    return tuple(sorted(_WORKLOADS))


def iter_workloads() -> Tuple[Tuple[str, "Workload"], ...]:
    """``(tag, workload)`` pairs in sorted tag order (CLI inventory)."""
    return tuple(sorted(_WORKLOADS.items()))


class Workload:
    """Base class for workload families.

    Subclasses override the hooks below; the defaults implement the
    behavior shared by every family (no memory pressure, the standard
    grid kernel).  ``tag`` is set by :func:`register_workload`;
    ``display`` is a short human-readable family name.
    """

    tag: str = ""
    display: str = ""
    #: The family's phase-vector class (duck-compatible with
    #: :class:`repro.hpl.timing.PhaseTimes`).
    phase_class: type = None  # type: ignore[assignment]

    # -- phase decomposition ------------------------------------------------

    @property
    def phase_names(self) -> Tuple[str, ...]:
        return tuple(self.phase_class.PHASE_NAMES)

    @property
    def compute_phases(self) -> Tuple[str, ...]:
        return tuple(self.phase_class.COMPUTE_PHASES)

    @property
    def comm_phases(self) -> Tuple[str, ...]:
        return tuple(self.phase_class.COMM_PHASES)

    # -- simulator entry points ---------------------------------------------

    def runner(self) -> Callable:
        """The scalar run function (``run_hpl``-shaped)."""
        raise NotImplementedError

    def batch_runner(self) -> Callable:
        """The vectorized batch run function (``run_hpl_batch``-shaped)."""
        raise NotImplementedError

    # -- measurement grid ---------------------------------------------------

    def plan(self, protocol: str) -> CampaignPlan:
        """The measurement plan for a protocol name (``basic``/``nl``/``ns``)."""
        raise NotImplementedError

    # -- memory model -------------------------------------------------------

    def memory_ratio(
        self,
        spec,
        config: ClusterConfig,
        n: int,
        kind_name: str,
        footprint: float = 1.0,
    ) -> float:
        """Worst-node memory-pressure ratio for the guard; 0.0 = no model."""
        return 0.0

    # -- search-stage estimator hook -----------------------------------------

    def make_grid_kernel(self, facade, adjustment, validate, stats, batch_fallback):
        """Build the candidate-axis grid estimator for this family.

        The default is the standard kernel (PR 9); a family whose batch
        estimator has different broadcast structure overrides this.
        """
        from repro.core.grid_kernel import GridKernel

        return GridKernel(
            facade,
            adjustment,
            validate=validate,
            stats=stats,
            batch_fallback=batch_fallback,
        )

    # -- inventory ----------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Serializable inventory entry (``repro workloads``)."""
        plan = self.plan("basic")
        return {
            "tag": self.tag,
            "display": self.display,
            "phases": list(self.phase_names),
            "compute_phases": list(self.compute_phases),
            "comm_phases": list(self.comm_phases),
            "construction_sizes": [int(n) for n in plan.construction_sizes],
            "evaluation_sizes": [int(n) for n in plan.evaluation_sizes],
            "construction_configs": len(plan.construction_configs),
            "evaluation_configs": len(plan.evaluation_configs),
        }


# -- shared simulator helpers --------------------------------------------------


def noise_rows(
    label: str,
    config: ClusterConfig,
    sizes: Sequence[int],
    trials: Sequence[int],
    noise,
    seed: int,
):
    """Per-run log-normal noise rows, one independent stream per row.

    The exact draw order of :func:`repro.hpl.driver.run_hpl` with the
    family's own stream ``label``: compute jitter, comm jitter, then the
    outlier roll — so a batched run is bit-identical to per-run ones.
    Returns ``(compute_rows, comm_rows)`` of shape ``(len(sizes), P)``, or
    ``(None, None)`` when noise is disabled.
    """
    if noise is None or not noise.enabled:
        return None, None
    p = config.total_processes
    compute_rows = np.empty((len(sizes), p))
    comm_rows = np.empty((len(sizes), p))
    for i, (n, trial) in enumerate(zip(sizes, trials)):
        rng = stream(seed, label, config.key(), n, trial)
        compute = np.exp(rng.normal(0.0, noise.sigma_compute, size=p))
        comm = np.exp(rng.normal(0.0, noise.sigma_comm, size=p))
        if noise.outlier_probability > 0 and rng.random() < noise.outlier_probability:
            compute = compute * noise.outlier_factor
            comm = comm * noise.outlier_factor
        compute_rows[i] = compute
        comm_rows[i] = comm
    return compute_rows, comm_rows


def normalize_trials(sizes: Sequence[int], trial) -> List[int]:
    """Expand a batch's ``trial`` argument (int or per-entry sequence)."""
    if isinstance(trial, (int, np.integer)):
        return [int(trial)] * len(sizes)
    trials = [int(t) for t in trial]
    if len(trials) != len(sizes):
        raise SimulationError(f"{len(sizes)} sizes but {len(trials)} trial indices")
    return trials


class WorkloadResult:
    """One simulated measurement of a non-HPL workload family.

    Carries per-process phase arrays plus the rank→kind map, and exposes
    the duck interface the measurement layer consumes
    (:meth:`~repro.measure.record.MeasurementRecord.from_result`):
    ``config`` / ``n`` / ``total_processes`` / ``wall_time_s`` /
    ``gflops`` / ``kind_phases`` / ``kind_names`` / ``bottleneck_kind``.
    """

    def __init__(
        self,
        spec_name: str,
        config: ClusterConfig,
        n: int,
        wall_time_s: float,
        phase_arrays: Dict[str, np.ndarray],
        rank_kinds: Sequence[str],
        phase_class: type,
        benchmark_flops: float,
    ) -> None:
        self.spec_name = spec_name
        self.config = config
        self.n = int(n)
        self.wall_time_s = float(wall_time_s)
        self.phase_arrays = phase_arrays
        self.rank_kinds = tuple(rank_kinds)
        self.phase_class = phase_class
        self.benchmark_flops = float(benchmark_flops)

    @property
    def total_processes(self) -> int:
        return len(self.rank_kinds)

    @property
    def gflops(self) -> float:
        from repro.units import gflops as to_gflops

        return to_gflops(self.benchmark_flops, self.wall_time_s)

    def kind_names(self) -> List[str]:
        seen: List[str] = []
        for name in self.rank_kinds:
            if name not in seen:
                seen.append(name)
        return seen

    def kind_phases(self, kind_name: str):
        """Mean phase breakdown over the processes of one kind."""
        mask = np.array([k == kind_name for k in self.rank_kinds])
        if not mask.any():
            raise SimulationError(
                f"kind {kind_name!r} has no processes in config {self.config.label()}"
            )
        return self.phase_class(
            **{
                name: float(values[mask].mean())
                for name, values in self.phase_arrays.items()
            }
        )

    def bottleneck_kind(self) -> str:
        return max(self.kind_names(), key=lambda k: self.kind_phases(k).total)
