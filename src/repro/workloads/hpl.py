"""HPL as a registered workload family.

This is a thin adapter: the simulator, phase decomposition, campaign
plans and memory model all predate the workload subsystem and live in
:mod:`repro.hpl` / :mod:`repro.measure.grids`.  Registering them here is
what lets the pipeline stop special-casing HPL — every HPL-specific
default the core used to hardcode now routes through this class, and the
golden bitwise tests pin that the routing changes nothing.
"""

from __future__ import annotations

from repro.hpl.driver import run_hpl, run_hpl_batch
from repro.hpl.memory import config_memory_ratio
from repro.hpl.timing import COMM_PHASES, COMPUTE_PHASES, PHASE_NAMES, PhaseTimes
from repro.measure.grids import plan_by_name
from repro.workloads.base import Workload, register_workload


@register_workload("hpl")
class HPLWorkload(Workload):
    """The paper's benchmark: LU factorization with partial pivoting."""

    display = "HPL linear-system benchmark"
    phase_class = PhaseTimes

    # PhaseTimes predates the PhaseVector base and keeps its phase-name
    # constants at module level, so the properties resolve them here.
    @property
    def phase_names(self):
        return tuple(PHASE_NAMES)

    @property
    def compute_phases(self):
        return tuple(COMPUTE_PHASES)

    @property
    def comm_phases(self):
        return tuple(COMM_PHASES)

    def runner(self):
        return run_hpl

    def batch_runner(self):
        return run_hpl_batch

    def plan(self, protocol: str):
        return plan_by_name(protocol)

    def memory_ratio(self, spec, config, n, kind_name, footprint=1.0):
        return config_memory_ratio(spec, config, n, kind_name, footprint=footprint)
