#!/usr/bin/env python
"""Workload subsystem smoke check: fast CI guard for ``repro.workloads``.

A trimmed-down version of the workloads test suite that runs in seconds
with no pytest dependency:

* **HPL golden guard** — an HPL pipeline built *through the workload
  registry* still reproduces the golden seed-7 NS estimates bitwise
  (the port onto the protocol must not change a single bit),
* **full loop per family** — ``sorting`` and ``montecarlo`` each run
  campaign -> fit -> optimize on their own grids, every record
  decomposing into the family's phases,
* **serve round-trip per family** — a saved family pipeline served over
  a real socket answers an estimate (with the ``workload`` assertion
  field) bitwise equal to the direct call, and a mismatched ``workload``
  is refused with a typed ``InvalidRequest`` reply.

Exit status is non-zero on any failure.  Run it as::

    PYTHONPATH=src python tools/workloads_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import math
import sys
import tempfile
from pathlib import Path

from repro.cluster.config import ClusterConfig
from repro.cluster.presets import kishimoto_cluster
from repro.core.persistence import save_pipeline
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.serve import EstimationServer, ModelRegistry

GOLDEN_PATH = (
    Path(__file__).parent.parent / "tests" / "golden" / "protocol_estimates_seed7.json"
)
FAMILIES = ("sorting", "montecarlo")
SEED = 11
CONFIG = (1, 2, 8, 1)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_hpl_golden() -> None:
    """HPL through the registry must reproduce the golden estimates."""
    golden = json.loads(GOLDEN_PATH.read_text())["protocols"]["ns"]
    pipeline = EstimationPipeline(
        kishimoto_cluster(), PipelineConfig(protocol="ns", seed=7)
    )
    if pipeline.workload.tag != "hpl":
        fail(f"default pipeline workload is {pipeline.workload.tag!r}, not 'hpl'")
    if json.loads(json.dumps(pipeline.adjustment.to_dict())) != golden["adjustment"]:
        fail("HPL adjustment drifted from the golden seed-7 artifact")
    for n_text, expected in golden["sizes"].items():
        got = [
            {
                "config": list(e.config.as_flat_tuple(pipeline.plan.kinds)),
                "estimate": e.estimate_s,
            }
            for e in pipeline.optimize(int(n_text)).ranking
        ]
        if json.loads(json.dumps(got)) != expected:
            fail(f"HPL ranking at N={n_text} drifted from the golden artifact")
    print(
        f"hpl: golden seed-7 NS estimates bitwise reproduced through the "
        f"registry ({len(golden['sizes'])} sizes)"
    )


def build_family(family: str) -> EstimationPipeline:
    pipeline = EstimationPipeline(
        kishimoto_cluster(),
        PipelineConfig(protocol="ns", seed=SEED, workload=family),
    )
    plan = pipeline.plan
    campaign = pipeline.campaign
    planned = len(list(plan.construction_runs()))
    if len(campaign.dataset) != planned:
        fail(
            f"{family}: campaign measured {len(campaign.dataset)} runs, "
            f"plan calls for {planned}"
        )
    phases = campaign.dataset[0].per_kind[0].phases
    if tuple(phases.as_dict()) != pipeline.workload.phase_names:
        fail(f"{family}: campaign records decompose into the wrong phases")
    if pipeline.store.model_count == 0:
        fail(f"{family}: no models fit from the campaign")
    n = plan.evaluation_sizes[0]
    winner = pipeline.optimize(n).ranking[0]
    if not math.isfinite(winner.estimate_s) or winner.estimate_s <= 0:
        fail(f"{family}: optimize winner at N={n} is {winner.estimate_s!r}")
    print(
        f"{family}: campaign ({planned} runs) -> fit "
        f"({pipeline.store.model_count} models) -> optimize "
        f"(best {winner.config.label()} at N={n}: {winner.estimate_s:.3f} s)"
    )
    return pipeline


async def check_served(family: str, pipeline_dir: Path, want: float, n: int) -> None:
    registry = ModelRegistry()
    registry.add(family, pipeline_dir)
    server = EstimationServer(registry, port=0, refresh_interval_s=None)
    host, port = await server.start()
    try:
        reader, writer = await asyncio.open_connection(host, port)

        async def ask(payload):
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()
            return json.loads(await reader.readline())

        reply = await ask({
            "id": 1, "op": "estimate", "pipeline": family,
            "config": list(CONFIG), "n": n, "workload": family,
        })
        if not reply.get("ok"):
            fail(f"{family}: served estimate failed: {reply!r}")
        (total,) = reply["result"]["totals"]
        if total != want:
            fail(
                f"{family}: served total {total!r} at N={n} is not bitwise "
                f"the direct estimate {want!r}"
            )

        wrong = "hpl" if family != "hpl" else "sorting"
        refused = await ask({
            "id": 2, "op": "estimate", "pipeline": family,
            "config": list(CONFIG), "n": n, "workload": wrong,
        })
        error = refused.get("error", {})
        if refused.get("ok") or error.get("type") != "InvalidRequest":
            fail(f"{family}: mismatched workload should be InvalidRequest: {refused!r}")
        if error.get("pipeline_workload") != family or error.get("field") != "workload":
            fail(f"{family}: mismatch reply lacks the typed payload: {error!r}")
        writer.close()
    finally:
        await server.shutdown()
    print(
        f"{family}: served estimate bitwise direct, mismatched workload "
        f"refused with typed InvalidRequest"
    )


def main() -> int:
    check_hpl_golden()
    for family in FAMILIES:
        pipeline = build_family(family)
        n = pipeline.plan.evaluation_sizes[0]
        config = ClusterConfig.from_tuple(pipeline.plan.kinds, CONFIG)
        want = float(pipeline.estimate_totals(config, [n])[0])
        with tempfile.TemporaryDirectory() as tmp:
            out = save_pipeline(
                pipeline, Path(tmp) / family, include_evaluation=False
            )
            manifest = json.loads((out / "manifest.json").read_text())
            if manifest.get("workload") != family:
                fail(f"{family}: manifest records workload {manifest.get('workload')!r}")
            asyncio.run(check_served(family, out, want, n))
    print("workloads smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
