#!/usr/bin/env python
"""Simulator smoke check: fast CI guard for the vectorized schedule walker.

A trimmed-down version of ``benchmarks/bench_schedule_walker.py`` that
runs in seconds with no pytest dependency.  It drives a tiny campaign
grid through BOTH walkers and verifies the property that must never
regress: the batched multi-size walker is *bitwise* identical to the
reference per-panel loop — wall clock and every per-rank phase array.

The observed speedup is printed for the CI log but NOT gated on; shared
runners are too noisy for a wall-time assertion here.  The real >= 10x
target lives in the benchmark.

Exit status is non-zero on any failure.  Run it as::

    PYTHONPATH=src python tools/sim_smoke.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.hpl.schedule import (
    HPLParameters,
    clear_panel_tables,
    reset_walker_stats,
    simulate_schedule,
    simulate_schedule_batch,
    walker_stats,
)
from repro.hpl.timing import PHASE_NAMES

#: Sizes chosen to exercise the padding paths: single panel, partial
#: final panel, and multi-panel problems of different block counts.
SIZES = (79, 400, 999, 1600, 2400)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_walker_identity(spec) -> None:
    from repro.cluster.config import ClusterConfig

    kinds = tuple(kind.name for kind in spec.kinds)
    configs = [
        ClusterConfig.from_tuple(kinds, values)
        for values in ((1, 1, 0, 0), (1, 2, 4, 1), (1, 1, 8, 1), (0, 0, 8, 2))
    ]
    params = HPLParameters(nb=80)
    sizes = list(SIZES)

    clear_panel_tables()
    reset_walker_stats()

    started = time.perf_counter()
    scalar = {
        config.key(): [
            simulate_schedule(spec, config, n, params) for n in sizes
        ]
        for config in configs
    }
    scalar_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = {
        config.key(): simulate_schedule_batch(spec, config, sizes, params)
        for config in configs
    }
    batched_s = time.perf_counter() - started

    for config in configs:
        for ref, got in zip(scalar[config.key()], batched[config.key()]):
            if got.wall_time_s != ref.wall_time_s:
                fail(
                    f"wall time differs for {config.label(kinds)} at "
                    f"N={ref.n}: scalar {ref.wall_time_s!r}, "
                    f"batched {got.wall_time_s!r}"
                )
            for name in PHASE_NAMES:
                if not np.array_equal(
                    ref.phase_arrays[name], got.phase_arrays[name]
                ):
                    fail(
                        f"phase {name!r} differs for {config.label(kinds)} "
                        f"at N={ref.n}"
                    )

    cells = len(configs) * len(sizes)
    speedup = scalar_s / batched_s if batched_s > 0 else float("inf")
    print(
        f"ok: walker identity over {cells} cells "
        f"({scalar_s:.3f}s scalar, {batched_s:.3f}s batched, "
        f"{speedup:.1f}x — informational only)"
    )
    print(f"ok: walker counters — {walker_stats().describe()}")


def check_noisy_identity(spec) -> None:
    from repro.cluster.config import ClusterConfig
    from repro.hpl.driver import NoiseSpec, run_hpl, run_hpl_batch

    kinds = tuple(kind.name for kind in spec.kinds)
    config = ClusterConfig.from_tuple(kinds, (1, 2, 4, 1))
    noise = NoiseSpec(outlier_probability=0.3, outlier_factor=3.0)
    sizes = [800, 1600, 800]

    batch = run_hpl_batch(spec, config, sizes, noise=noise, seed=11)
    for result, n in zip(batch, sizes):
        ref = run_hpl(spec, config, n, noise=noise, seed=11)
        if result.wall_time_s != ref.wall_time_s:
            fail(f"noisy batched run differs from run_hpl at N={n}")
    print("ok: noisy batched runs reproduce run_hpl streams exactly")


def main() -> None:
    from repro.cluster.presets import kishimoto_cluster

    spec = kishimoto_cluster()
    check_walker_identity(spec)
    check_noisy_identity(spec)
    print("sim smoke passed")


if __name__ == "__main__":
    main()
