#!/usr/bin/env python
"""Perf smoke check: fast CI guard for the perf engine.

A trimmed-down version of ``benchmarks/bench_perf_engine.py`` that runs
in a few seconds with no pytest dependency.  It verifies the properties
that must never regress:

* a pooled campaign reproduces the serial campaign bit for bit,
* ``optimize_many`` matches the scalar search loop bit for bit and is
  not slower than it by more than the generous ceiling below,
* a warm re-sweep is answered entirely from the estimate cache.

Exit status is non-zero on any failure.  Run it as::

    PYTHONPATH=src python tools/perf_smoke.py

Wall-time assertions use a deliberately loose ceiling (the batched
sweep merely has to beat HALF the looped time) so the check stays
green on slow, noisy or single-core CI runners; the real speedup
targets live in the benchmark, not here.
"""

from __future__ import annotations

import sys
import time

from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.hpl.driver import NoiseSpec
from repro.measure.campaign import run_campaign
from repro.measure.grids import custom_plan
from repro.perf.parallel import available_cpu_count, resolve_workers

SEED = 42
SWEEP_SIZES = tuple(1600 + 100 * i for i in range(24))
NOISE = NoiseSpec(sigma_compute=0.02, sigma_comm=0.04, outlier_probability=0.25)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_campaign_determinism(spec) -> None:
    plan = custom_plan(
        spec,
        construction_sizes=(400, 600, 800),
        evaluation_sizes=(1200,),
        max_procs=2,
        name="smoke",
    )
    serial = run_campaign(spec, plan, noise=NOISE, seed=SEED, workers=1)
    pooled = run_campaign(spec, plan, noise=NOISE, seed=SEED, workers=4)
    if pooled.dataset.to_json() != serial.dataset.to_json():
        fail("pooled campaign dataset differs from the serial campaign")
    if pooled.cost_by_kind_and_n != serial.cost_by_kind_and_n:
        fail("pooled campaign cost ledger differs from the serial campaign")
    print(f"ok: campaign determinism (workers=4 -> {resolve_workers(4)} effective)")


def check_batched_search(spec) -> None:
    pipeline = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=SEED))
    _ = pipeline.store, pipeline.adjustment

    opt = pipeline.optimizer()
    started = time.perf_counter()
    looped = [opt.optimize(n) for n in SWEEP_SIZES]
    looped_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = pipeline.optimize_many(SWEEP_SIZES)
    batched_s = time.perf_counter() - started

    for a, b in zip(looped, batched):
        if [e.config.key() for e in a.ranking] != [e.config.key() for e in b.ranking]:
            fail(f"batched ranking differs from looped ranking at N={a.n}")
        if [e.estimate_s for e in a.ranking] != [e.estimate_s for e in b.ranking]:
            fail(f"batched estimates differ from looped estimates at N={a.n}")
    if batched_s > looped_s / 2:
        fail(
            f"batched sweep ({batched_s:.3f}s) failed to beat half the "
            f"looped time ({looped_s:.3f}s)"
        )
    print(f"ok: batched search identity ({looped_s:.3f}s looped, {batched_s:.3f}s batched)")

    stats = pipeline.estimate_cache.stats
    hits_before = stats.hits
    pipeline.optimize_many(SWEEP_SIZES)
    expected = len(pipeline.plan.evaluation_configs) * len(SWEEP_SIZES)
    if stats.hits - hits_before != expected:
        fail(
            f"warm re-sweep hit the cache {stats.hits - hits_before} times, "
            f"expected {expected}"
        )
    print(f"ok: warm re-sweep fully cached ({expected} hits)")


def main() -> None:
    from repro.cluster.presets import kishimoto_cluster

    print(f"perf smoke on {available_cpu_count()} CPU(s)")
    spec = kishimoto_cluster()
    check_campaign_determinism(spec)
    check_batched_search(spec)
    print("perf smoke passed")


if __name__ == "__main__":
    main()
