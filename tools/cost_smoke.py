#!/usr/bin/env python
"""Cost subsystem smoke check: fast CI guard for ``repro.cost``.

A trimmed-down version of the cost test suite that runs in seconds with
no pytest dependency:

* a costed cluster description round-trips through the format-2
  serialization bitwise, and a format-1 description still loads (with
  ``cost=None``),
* the paper's cluster with the published rate card yields a frontier of
  at least 3 points whose objective vectors are mutually non-dominated,
* the same frontier served over a real socket (``pareto`` op) is
  *bitwise* the direct ``EstimationPipeline.pareto`` call, and a
  request with an unknown field is refused with a typed
  ``InvalidRequest`` reply.

Exit status is non-zero on any failure.  Run it as::

    PYTHONPATH=src python tools/cost_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.cluster.presets import kishimoto_cluster
from repro.cluster.serialize import cluster_from_dict, cluster_to_dict
from repro.core.persistence import save_pipeline
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.cost.pareto import dominates
from repro.cost.presets import kishimoto_rate_card
from repro.serve import EstimationServer, ModelRegistry

N = 5000


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_serialization() -> None:
    spec = kishimoto_cluster().with_cost(kishimoto_rate_card())
    data = cluster_to_dict(spec)
    if data.get("format") != 2:
        fail(f"costed cluster should serialize as format 2, got {data.get('format')}")
    loaded = cluster_from_dict(data)
    if loaded.cost != spec.cost:
        fail("rate card did not round-trip bitwise")
    old = cluster_to_dict(kishimoto_cluster())
    old["format"] = 1
    if cluster_from_dict(old).cost is not None:
        fail("format-1 description should load with cost=None")
    print("serialization: costed round-trip OK, format-1 compatible")


def check_frontier(pipeline: EstimationPipeline):
    frontier = pipeline.pareto(N)
    if len(frontier.points) < 3:
        fail(f"expected >= 3 frontier points at N={N}, got {len(frontier.points)}")
    for p in frontier.points:
        for q in frontier.points:
            if dominates(p.objectives(), q.objectives()):
                fail(
                    f"frontier point {q.config.label()} is dominated by "
                    f"{p.config.label()}"
                )
    exhaustive = pipeline.optimize(N)
    if frontier.min_time.time_s != exhaustive.best.estimate_s:
        fail("frontier min-time endpoint drifted from the exhaustive winner")
    print(
        f"frontier: {len(frontier.points)} mutually non-dominated points, "
        "min-time endpoint bitwise exhaustive"
    )
    return frontier


async def check_served(pipeline_dir: Path, direct) -> None:
    registry = ModelRegistry()
    registry.add("costed", pipeline_dir)
    server = EstimationServer(registry, port=0, refresh_interval_s=None)
    host, port = await server.start()
    try:
        reader, writer = await asyncio.open_connection(host, port)

        async def ask(payload):
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()
            return json.loads(await reader.readline())

        bad = await ask({"id": 1, "op": "pareto", "pipeline": "costed",
                         "n": N, "top": 3})
        if bad.get("ok") or bad["error"]["type"] != "InvalidRequest":
            fail(f"unknown field should be InvalidRequest, got {bad!r}")

        reply = await ask({"id": 2, "op": "pareto", "pipeline": "costed",
                           "n": N})
        if not reply.get("ok"):
            fail(f"served pareto failed: {reply!r}")
        served = [
            (p["time_s"], p["dollars"], p["energy_wh"])
            for p in reply["result"]["sizes"][0]["points"]
        ]
        want = [(p.time_s, p.dollars, p.energy_wh) for p in direct.points]
        if served != want:
            fail(f"served frontier not bitwise direct: {served} != {want}")
        writer.close()
    finally:
        await server.shutdown()
    print(
        f"serving: InvalidRequest typed rejection OK, served frontier "
        f"bitwise direct ({len(want)} points)"
    )


def main() -> int:
    check_serialization()
    spec = kishimoto_cluster().with_cost(kishimoto_rate_card())
    pipeline = EstimationPipeline(spec, PipelineConfig(protocol="basic", seed=7))
    frontier = check_frontier(pipeline)
    with tempfile.TemporaryDirectory() as tmp:
        pipeline_dir = Path(tmp) / "costed"
        save_pipeline(pipeline, pipeline_dir)
        asyncio.run(check_served(pipeline_dir, frontier))
    print("cost smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
