#!/usr/bin/env python
"""Service smoke check: fast CI guard for ``repro.serve``.

A trimmed-down version of ``benchmarks/bench_serve_throughput.py`` that
runs in a few seconds with no pytest dependency.  It starts a real
server on an ephemeral port against the golden saved pipeline, fires
concurrent client queries at it, and verifies the properties that must
never regress:

* every served total is *bitwise* equal to a direct
  ``Estimator.estimate_totals`` call on the same loaded pipeline,
* concurrent traffic actually coalesces into micro-batches,
* micro-batching beats a batching-off server (``max_batch=1``) in
  requests/sec on an optimize workload, and is no worse than HALF the
  batching-off throughput on the lighter estimate workload (the loose
  ceiling keeps the check green on slow, noisy CI runners; the real
  targets live in the benchmark),
* shutdown drains cleanly with every admitted request answered.

Exit status is non-zero on any failure.  Run it as::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.cluster.config import ClusterConfig
from repro.core.persistence import load_pipeline
from repro.serve import EstimationServer, ModelRegistry, fire_concurrent

FIXTURE = Path(__file__).parent.parent / "tests" / "golden" / "format1_pipeline"
CONCURRENCY = 64
CONFIG = (1, 2, 8, 1)
#: Distinct problem sizes so no round is flattened by the estimate cache.
SIZES = tuple(1600 + 8 * i for i in range(256))


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def estimate_payloads() -> list[dict]:
    return [
        {"op": "estimate", "pipeline": "golden", "config": list(CONFIG), "n": n}
        for n in SIZES
    ]


def optimize_payloads() -> list[dict]:
    return [
        {"op": "optimize", "pipeline": "golden", "n": n, "top": 3}
        for n in SIZES[:128]
    ]


async def run_round(payloads: list[dict], batching: bool):
    registry = ModelRegistry()
    registry.add("golden", FIXTURE)
    kwargs = {} if batching else {"max_batch": 1, "batch_window_s": 0.0}
    server = EstimationServer(registry, port=0, refresh_interval_s=None, **kwargs)
    host, port = await server.start()
    try:
        replies, elapsed = await fire_concurrent(
            host, port, payloads, concurrency=CONCURRENCY
        )
    finally:
        await server.shutdown()
    return server, replies, elapsed


def check_identity(replies) -> None:
    direct = load_pipeline(FIXTURE)
    config = ClusterConfig.from_tuple(direct.plan.kinds, CONFIG)
    want = {n: float(t) for n, t in zip(SIZES, direct.estimate_totals(config, SIZES))}
    if len(replies) != len(SIZES):
        fail(f"{len(replies)} replies to {len(SIZES)} requests")
    for reply in replies:
        if not reply.get("ok"):
            fail(f"request failed under smoke load: {reply}")
        (n,) = reply["result"]["ns"]
        (total,) = reply["result"]["totals"]
        if total != want[n]:
            fail(f"served total for N={n} is {total!r}, direct path says {want[n]!r}")
    print(f"ok: {len(SIZES)} served totals bitwise equal to direct estimates")


def throughput(payloads: list[dict], label: str) -> tuple[float, float]:
    server, replies, batched_s = asyncio.run(run_round(payloads, batching=True))
    if any(not r.get("ok") for r in replies):
        fail(f"{label}: batched round returned errors")
    if server.metrics.batch_sizes.max <= 1:
        fail(f"{label}: concurrent traffic never coalesced into a micro-batch")
    _, replies, unbatched_s = asyncio.run(run_round(payloads, batching=False))
    if any(not r.get("ok") for r in replies):
        fail(f"{label}: batching-off round returned errors")
    batched_rps = len(payloads) / batched_s
    unbatched_rps = len(payloads) / unbatched_s
    print(
        f"ok: {label} throughput {batched_rps:.0f} rps batched, "
        f"{unbatched_rps:.0f} rps batching-off "
        f"(largest batch {server.metrics.batch_sizes.max})"
    )
    return batched_rps, unbatched_rps


def check_cli_process() -> None:
    """Start a real ``repro serve`` process, query it with ``repro
    client``, and verify SIGINT shuts it down cleanly."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--dir", f"golden={FIXTURE}", "--port", str(port)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        deadline = time.monotonic() + 30.0
        while True:
            try:
                with socket.create_connection(("127.0.0.1", port), timeout=1.0):
                    break
            except OSError:
                if server.poll() is not None or time.monotonic() > deadline:
                    out = server.communicate()[0] if server.poll() is not None else ""
                    fail(f"repro serve never came up on port {port}\n{out}")
                time.sleep(0.1)

        client = subprocess.run(
            [sys.executable, "-m", "repro", "client", "--port", str(port),
             "--op", "estimate", "--pipeline", "golden",
             "--config", "1,2,8,1", "--n", "3200"],
            env=env, capture_output=True, text=True, timeout=30,
        )
        if client.returncode != 0:
            fail(f"repro client failed: {client.stderr}")
        reply = json.loads(client.stdout)
        if not reply["ok"] or not reply["result"]["totals"]:
            fail(f"repro client got a bad reply: {client.stdout}")
        server.send_signal(signal.SIGINT)
        out, _ = server.communicate(timeout=30)
        if server.returncode != 0:
            fail(f"repro serve exited {server.returncode} on SIGINT\n{out}")
        if "requests" not in out:
            fail(f"repro serve did not print its metrics on shutdown\n{out}")
        print("ok: repro serve process answered repro client and shut down cleanly")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def main() -> None:
    print(f"serve smoke: {CONCURRENCY}-way concurrency against {FIXTURE.name}")

    _, replies, _ = asyncio.run(run_round(estimate_payloads(), batching=True))
    check_identity(replies)

    est_batched, est_unbatched = throughput(estimate_payloads(), "estimate")
    if est_batched < est_unbatched / 2:
        fail(
            f"micro-batched estimates ({est_batched:.0f} rps) fell below half "
            f"the batching-off throughput ({est_unbatched:.0f} rps)"
        )

    opt_batched, opt_unbatched = throughput(optimize_payloads(), "optimize")
    if opt_batched <= opt_unbatched:
        fail(
            f"micro-batching ({opt_batched:.0f} rps) failed to beat "
            f"batching-off ({opt_unbatched:.0f} rps) on the optimize workload"
        )

    check_cli_process()
    print("serve smoke passed")


if __name__ == "__main__":
    main()
