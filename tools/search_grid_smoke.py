#!/usr/bin/env python
"""Grid-kernel smoke check: scalar vs grid, bitwise, on every backend.

CI guard for the candidate-axis vectorized estimation kernel
(:mod:`repro.core.grid_kernel`).  It fits the paper's NS pipeline, then
runs **every** registered search backend twice over the 62-candidate
evaluation grid at every evaluation size — once with the grid estimator
wired (the default) and once with it stripped (the scalar reference) —
and asserts the outcomes are **bitwise identical**: same ranking keys,
same float estimates (``==``, no tolerances), same evaluation counts,
same dedup hits, same budget-exhaustion flags.  A budgeted pass repeats
the comparison where the budget runs out mid-frontier.  Finally
``estimate_grid`` itself is swept cell-by-cell against
``estimate(config, n).total``.

Exit status is non-zero on any failure.  Run it as::

    PYTHONPATH=src python tools/search_grid_smoke.py
"""

from __future__ import annotations

import sys

from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.core.search import registered_search_backends

SEED = 7
SMOKE_BUDGETS = (3, 17)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def strip_grid(backend):
    """The scalar reference: the same backend with its kernel unplugged."""
    if hasattr(backend, "_grid"):
        backend._grid = None
    if hasattr(backend, "grid_estimator"):
        backend.grid_estimator = None
    return backend


def outcome_sig(outcome):
    return (
        outcome.n,
        [(e.config.key(), e.estimate_s) for e in outcome.ranking],
        outcome.stats.evaluations,
        outcome.stats.dedup_hits,
        outcome.stats.exhausted,
        outcome.complete,
    )


def check_backend(pipeline, tag: str, sizes, budget=None) -> int:
    compared = 0
    for n in sizes:
        try:
            grid = pipeline.optimizer(backend=tag, budget=budget).optimize(n)
        except Exception as error:
            if budget is not None:
                # Some backends reject budgets outright; that is their
                # scalar behavior too, nothing to compare.
                try:
                    strip_grid(
                        pipeline.optimizer(backend=tag, budget=budget)
                    ).optimize(n)
                except Exception as scalar_error:
                    if str(error) == str(scalar_error):
                        return 0
                fail(f"{tag} budget={budget}: grid raised {error!r}")
            raise
        scalar = strip_grid(
            pipeline.optimizer(backend=tag, budget=budget)
        ).optimize(n)
        if outcome_sig(grid) != outcome_sig(scalar):
            fail(
                f"{tag} diverges from scalar at N={n}"
                + (f" budget={budget}" if budget is not None else "")
            )
        compared += 1
    return compared


def main() -> None:
    pipeline = _build_pipeline()
    sizes = list(pipeline.plan.evaluation_sizes)
    configs = pipeline.plan.evaluation_configs

    grid = pipeline.estimate_grid(configs, sizes)
    for i, config in enumerate(configs):
        for j, n in enumerate(sizes):
            expected = pipeline.estimate(config, n).total
            got = float(grid[i, j])
            if got != expected and not (got == float("inf") == expected):
                fail(
                    f"estimate_grid[{config.label()}, N={n}] = {got!r} "
                    f"!= scalar {expected!r}"
                )
    print(
        f"estimate_grid: {len(configs)}x{len(sizes)} cells bitwise-equal "
        "to the scalar estimator"
    )

    for tag in registered_search_backends():
        compared = check_backend(pipeline, tag, sizes)
        line = f"{tag}: {compared} sizes bitwise-equal"
        budget_runs = 0
        for budget in SMOKE_BUDGETS:
            budget_runs += check_backend(pipeline, tag, sizes[:2], budget=budget)
        if budget_runs:
            line += f", {budget_runs} budgeted runs bitwise-equal"
        print(line)

    stats = pipeline.perf.grid
    if stats is None or stats.blocks == 0:
        fail("the grid kernel was never exercised (no blocks recorded)")
    print(f"grid kernel: {stats.describe()}")
    print("search grid smoke: OK")


def _build_pipeline() -> EstimationPipeline:
    from repro.cluster.presets import kishimoto_cluster

    return EstimationPipeline(
        kishimoto_cluster(), PipelineConfig(protocol="ns", seed=SEED)
    )


if __name__ == "__main__":
    main()
