#!/usr/bin/env python
"""Search smoke check: every registered backend on the paper's grid.

Fast CI guard for the Search protocol.  It fits the paper's NS pipeline
(seed 7), then runs **every** backend in the registry over the full
62-candidate evaluation grid at every evaluation size and asserts:

* exact backends (``exhaustive``, ``branch-bound``) agree **bitwise** on
  the winning configuration and its estimate — same key, same float,
  ``==`` with no tolerances;
* branch-and-bound actually prunes (fewer evaluations than candidates,
  evaluations + pruned candidates cover the grid);
* heuristic backends return a finite, validly-ranked answer and respect
  an evaluation budget when given one.

Exit status is non-zero on any failure.  Run it as::

    PYTHONPATH=src python tools/search_smoke.py
"""

from __future__ import annotations

import math
import sys

from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.core.search import iter_search_registry

SEED = 7
#: Exact backends must reproduce the exhaustive winner bitwise; the rest
#: are anytime heuristics judged on validity, not optimality.
EXACT_BACKENDS = ("exhaustive", "branch-bound")
SMOKE_BUDGET = 40


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_backend(pipeline, tag: str, n: int, reference) -> str:
    outcome = pipeline.optimize(n, backend=tag)
    stats = outcome.stats
    if not math.isfinite(outcome.best.estimate_s):
        fail(f"{tag} returned a non-finite best at N={n}")
    if tag in EXACT_BACKENDS:
        if outcome.best.config.key() != reference.best.config.key():
            fail(
                f"{tag} winner {outcome.best.config.label()} differs from "
                f"exhaustive {reference.best.config.label()} at N={n}"
            )
        if outcome.best.estimate_s != reference.best.estimate_s:
            fail(
                f"{tag} estimate {outcome.best.estimate_s!r} is not bitwise "
                f"{reference.best.estimate_s!r} at N={n}"
            )
    if tag == "branch-bound":
        total = len(reference.ranking)
        if stats.evaluations + stats.pruned_candidates != total:
            fail(
                f"branch-bound accounting broken at N={n}: "
                f"{stats.evaluations} evaluated + {stats.pruned_candidates} "
                f"pruned != {total} candidates"
            )
        if stats.evaluations >= total:
            fail(f"branch-bound pruned nothing at N={n}")
    return (
        f"{stats.evaluations} evals"
        + (f", {stats.pruned_candidates} pruned" if stats.pruned_candidates else "")
    )


def check_budget(pipeline, tag: str, n: int) -> None:
    try:
        outcome = pipeline.optimize(n, backend=tag, budget=SMOKE_BUDGET)
    except Exception as exc:  # exhaustive rejects budgets by design
        if tag == "exhaustive":
            return
        fail(f"{tag} rejected budget={SMOKE_BUDGET}: {exc}")
    if outcome.stats.evaluations > SMOKE_BUDGET:
        fail(
            f"{tag} spent {outcome.stats.evaluations} evaluations over "
            f"its budget of {SMOKE_BUDGET} at N={n}"
        )


def main() -> None:
    from repro.cluster.presets import kishimoto_cluster

    pipeline = EstimationPipeline(
        kishimoto_cluster(), PipelineConfig(protocol="ns", seed=SEED)
    )
    _ = pipeline.store, pipeline.adjustment
    sizes = pipeline.plan.evaluation_sizes
    grid = len(pipeline.plan.evaluation_configs)
    tags = [tag for tag, _ in iter_search_registry()]
    print(
        f"search smoke: {len(tags)} backends x {len(sizes)} sizes "
        f"on the {grid}-candidate paper grid"
    )
    for n in sizes:
        reference = pipeline.optimize(n, backend="exhaustive")
        for tag in tags:
            detail = check_backend(pipeline, tag, n, reference)
            print(f"ok: {tag:<12} N={n}  {detail}")
    for tag in tags:
        check_budget(pipeline, tag, sizes[0])
    print(f"ok: budgets honored (budget={SMOKE_BUDGET})")
    print("search smoke passed")


if __name__ == "__main__":
    main()
