#!/usr/bin/env python
"""Calibration smoke check: fast CI guard for ``repro.calibrate``.

Replays one synthetic drift scenario end to end with no pytest
dependency, verifying the loop's load-bearing properties:

* healthy traffic against the promoted model scores residuals at
  rounding error and never trips the Page-Hinkley detector,
* a degraded network (20x latency, quarter bandwidth) fires the drift
  alarm within one pass over the calibration family,
* refitting on the re-measured construction campaign produces a
  candidate with a new fingerprint whose parent is the incumbent's,
* shadow evaluation on the held-out live tail prefers the candidate,
* promotion hot-swaps the serving registry entry and rollback restores
  the prior generation's fingerprint,
* the whole run is deterministic: a second pass over the same log
  reproduces the alarm at the same sequence number.

Exit status is non-zero on any failure.  Run it as::

    PYTHONPATH=src python tools/calibrate_smoke.py
"""

from __future__ import annotations

import dataclasses
import sys
import tempfile
import time
from pathlib import Path

from repro.calibrate import (
    Calibrator,
    DriftConfig,
    DriftDetector,
    ModelVersions,
    ObservationLog,
    Recalibrator,
)
from repro.cluster.presets import kishimoto_cluster
from repro.core.persistence import save_pipeline
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.hpl.driver import run_hpl
from repro.measure.campaign import run_campaign
from repro.measure.record import MeasurementRecord
from repro.serve import ModelRegistry


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def observe_run(calibrator, spec, kinds, config, n, trial, source):
    result = run_hpl(spec, config, n, noise=None, seed=7, trial=trial)
    record = MeasurementRecord.from_result(result, kinds, seed=7, trial=trial)
    return calibrator.ingest(record, source=source)


def main() -> None:
    started = time.perf_counter()
    base_spec = kishimoto_cluster()
    drifted_spec = dataclasses.replace(
        base_spec,
        network=dataclasses.replace(
            base_spec.network,
            latency_s=base_spec.network.latency_s * 20,
            bandwidth_bps=base_spec.network.bandwidth_bps / 4,
        ),
    )
    incumbent = EstimationPipeline(
        base_spec, PipelineConfig(protocol="ns", seed=7, noise=None)
    )
    kinds = incumbent.plan.kinds
    traffic_configs = incumbent.calibration_configs()
    n_traffic = incumbent.calibration_size()

    with tempfile.TemporaryDirectory(prefix="calibrate-smoke-") as tmp:
        root = Path(tmp)
        serving_dir = root / "serving"
        save_pipeline(
            incumbent,
            serving_dir,
            include_evaluation=incumbent.graph.has("evaluation"),
        )
        registry = ModelRegistry()
        registry.add("cluster", serving_dir)
        seed_fingerprint = registry.get("cluster").fingerprint

        calibrator = Calibrator(
            "cluster",
            pipeline_provider=lambda: registry.get("cluster").pipeline,
            log=ObservationLog(root / "observations.jsonl"),
            detector=DriftDetector(DriftConfig(delta=0.02, threshold=0.5)),
            versions=ModelVersions(root / "versions"),
        )

        # 1. Healthy traffic: no drift.
        for config in traffic_configs:
            result = observe_run(
                calibrator, base_spec, kinds, config, n_traffic, 0, "live"
            )
            check(
                result.residual is not None and abs(result.residual) < 1e-9,
                f"healthy residual not ~0: {result.residual!r}",
            )
        check(not calibrator.drifted, "detector alarmed on healthy traffic")

        # 2. Drift detection: the same traffic on the degraded network.
        for config in traffic_configs:
            last = observe_run(
                calibrator, drifted_spec, kinds, config, n_traffic, 1, "live"
            )
            check(
                last.residual is not None and last.residual > 1.0,
                f"drifted residual too small: {last.residual!r}",
            )
        check(calibrator.drifted, "detector missed a ~2x network drift")
        alarmed_at = calibrator.detector.state.alarmed_at
        print(
            f"drift alarm at observation {alarmed_at} "
            f"({calibrator.detector.describe()})"
        )

        # 3. Refit evidence + drifted live tail (the shadow holdout).
        campaign = run_campaign(drifted_spec, incumbent.plan, noise=None, seed=7)
        calibrator.replay_dataset(campaign.dataset, source="replay")
        for config in traffic_configs:
            observe_run(
                calibrator, drifted_spec, kinds, config, n_traffic, 2, "live"
            )

        # 4. Refit and shadow-evaluate.
        calibrator.recalibrator = Recalibrator(
            holdout_fraction=(len(traffic_configs) + 0.5) / len(calibrator.log)
        )
        info, shadow = calibrator.refit()
        print(shadow.describe())
        check(
            shadow.holdout_size == len(traffic_configs),
            f"holdout is {shadow.holdout_size}, wanted {len(traffic_configs)}",
        )
        check(shadow.candidate_wins, "stale incumbent beat the refit candidate")
        check(
            info.parent_fingerprint == seed_fingerprint,
            "candidate's parent is not the serving fingerprint",
        )
        check(
            info.fingerprint != seed_fingerprint,
            "refit did not change the model fingerprint",
        )

        # 5. Promotion hot-swaps the registry; rollback restores it.
        promoted = calibrator.promote(registry=registry)
        check(
            registry.get("cluster").fingerprint == promoted.fingerprint,
            "promotion did not swap the served fingerprint",
        )
        check(not calibrator.drifted, "promotion did not reset the detector")
        rolled = calibrator.rollback(registry=registry)
        check(
            registry.get("cluster").fingerprint == seed_fingerprint,
            "rollback did not restore the seed fingerprint",
        )
        check(rolled.version_id == "v0001", "rollback chose the wrong version")

        # 6. Determinism: a fresh loop over the same log replays the
        #    alarm at the same sequence number.
        replayer = Calibrator(
            "cluster",
            pipeline_provider=lambda: calibrator.versions.load_pipeline("v0001"),
            log=ObservationLog(root / "observations.jsonl"),
            detector=DriftDetector(DriftConfig(delta=0.02, threshold=0.5)),
        )
        replayer.replay_log()
        check(
            replayer.detector.state.alarmed_at == alarmed_at,
            f"replay alarmed at {replayer.detector.state.alarmed_at}, "
            f"first pass at {alarmed_at}",
        )

    elapsed = time.perf_counter() - started
    print(f"OK: calibration loop smoke passed in {elapsed:.1f}s")


if __name__ == "__main__":
    main()
