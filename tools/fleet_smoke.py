#!/usr/bin/env python
"""Fleet smoke check: fast CI guard for ``repro.serve.fleet``.

Starts a real 2-replica fleet against the golden saved pipeline and
verifies the properties the sharded serving layer must never lose:

* every served estimate is *bitwise* equal to the direct estimator path
  on the same loaded pipeline, with mixed estimate/optimize traffic;
* the model artifacts are genuinely shared: the workers' combined
  proportional (PSS) residency of the shared segment stays near 1x the
  segment size, not ``workers``x (skipped where ``/proc/<pid>/smaps``
  is unavailable);
* one promotion lands under live traffic with zero torn fingerprints —
  every reply carries the old fingerprint or the new one, and replies
  after the promotion all carry the new one;
* ``fleet_status`` aggregates both replicas from one connection;
* the fleet drains gracefully, and so does a real ``repro serve
  --workers 2`` process on SIGINT.

Exit status is non-zero on any failure.  Run it as::

    PYTHONPATH=src python tools/fleet_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.cluster.config import ClusterConfig
from repro.core.persistence import load_pipeline
from repro.serve import FleetConfig, FleetSupervisor, ServeClient, fire_concurrent

FIXTURE = Path(__file__).parent.parent / "tests" / "golden" / "format1_pipeline"
CONFIG = (1, 2, 8, 1)
SIZES = tuple(1600 + 8 * i for i in range(128))
WORKERS = 2


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def mixed_payloads() -> list[dict]:
    payloads: list[dict] = [
        {"op": "estimate", "pipeline": "golden", "config": list(CONFIG), "n": n}
        for n in SIZES
    ]
    payloads += [
        {"op": "optimize", "pipeline": "golden", "n": n, "top": 3}
        for n in SIZES[:32]
    ]
    return payloads


def check_identity(replies) -> None:
    direct = load_pipeline(FIXTURE)
    config = ClusterConfig.from_tuple(direct.plan.kinds, CONFIG)
    want = {n: float(t) for n, t in zip(SIZES, direct.estimate_totals(config, SIZES))}
    estimates = 0
    for reply in replies:
        if not reply.get("ok"):
            fail(f"request failed under fleet load: {reply}")
        result = reply["result"]
        if "totals" in result and "ns" in result:
            estimates += 1
            for n, total in zip(result["ns"], result["totals"]):
                if total != want[n]:
                    fail(
                        f"served total for N={n} is {total!r}, "
                        f"direct path says {want[n]!r}"
                    )
    if estimates != len(SIZES):
        fail(f"expected {len(SIZES)} estimate replies, saw {estimates}")
    print(
        f"ok: {estimates} fleet-served totals bitwise equal to direct estimates "
        f"(+{len(replies) - estimates} optimize replies)"
    )


def check_shared_residency(supervisor: FleetSupervisor) -> None:
    """The zero-copy claim, measured: each worker maps the whole segment
    (Rss ~ segment size) but the *proportional* set size splits it, so
    the fleet-wide PSS total stays ~1x the segment size."""
    segment = supervisor._segments["golden"]
    seg_size = segment.size
    pids = supervisor.worker_pids()
    total_pss_kb = 0
    for pid in pids:
        smaps = Path(f"/proc/{pid}/smaps")
        if not smaps.exists():
            print("skip: /proc/<pid>/smaps unavailable; cannot measure residency")
            return
        pss_kb = None
        in_segment = False
        try:
            for line in smaps.read_text().splitlines():
                if segment.name in line:
                    in_segment = True
                elif in_segment and line.startswith("Pss:"):
                    pss_kb = int(line.split()[1])
                    break
                elif in_segment and "-" in line.split(" ")[0] and "/" in line:
                    in_segment = False  # next mapping, no Pss seen
        except OSError:
            print("skip: cannot read smaps; residency not measured")
            return
        if pss_kb is None:
            fail(f"worker {pid} has no mapping of shared segment {segment.name}")
        total_pss_kb += pss_kb
    budget_kb = 1.5 * seg_size / 1024
    if total_pss_kb > budget_kb:
        fail(
            f"shared segment residency is {total_pss_kb} KiB PSS across "
            f"{len(pids)} workers — more than 1.5x the {seg_size / 1024:.0f} KiB "
            f"segment; artifacts are being copied, not shared"
        )
    print(
        f"ok: shared artifacts resident once — {total_pss_kb} KiB total PSS "
        f"across {len(pids)} workers for a {seg_size / 1024:.0f} KiB segment"
    )


def make_candidate(root: Path) -> Path:
    """A re-calibrated copy of the golden pipeline (new fingerprint)."""
    target = root / "candidate"
    shutil.copytree(FIXTURE, target)
    manifest_path = target / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["adjustment"]["scales"] = [
        [mi, scale * 1.25] for mi, scale in manifest["adjustment"]["scales"]
    ]
    manifest_path.write_text(json.dumps(manifest, indent=1))
    return target


def check_promotion_under_traffic(supervisor: FleetSupervisor, root: Path) -> None:
    old = load_pipeline(FIXTURE).estimate_cache.fingerprint
    candidate_dir = make_candidate(root)
    new = load_pipeline(candidate_dir).estimate_cache.fingerprint
    payloads = [
        {"op": "estimate", "pipeline": "golden", "config": list(CONFIG),
         "n": 1600 + 8 * (i % 64)}
        for i in range(400)
    ]
    outcome: dict = {}
    errors: list[BaseException] = []

    def promote() -> None:
        try:
            time.sleep(0.05)
            outcome.update(supervisor.promote("golden", candidate_dir))
        except BaseException as exc:  # surfaced after the join
            errors.append(exc)

    promoter = threading.Thread(target=promote)
    promoter.start()
    replies, _ = asyncio.run(
        fire_concurrent(supervisor.host, supervisor.port, payloads, concurrency=16)
    )
    promoter.join(timeout=120)
    if errors:
        fail(f"promotion failed under traffic: {errors[0]}")
    if outcome.get("replicas") != WORKERS:
        fail(f"promotion committed on {outcome.get('replicas')} of {WORKERS} replicas")

    seen: set[str] = set()
    for reply in replies:
        if not reply.get("ok"):
            fail(f"request failed during promotion: {reply}")
        seen.add(reply["result"]["fingerprint"])
    torn = seen - {old, new}
    if torn:
        fail(f"torn fingerprints during promotion: {sorted(torn)}")

    with ServeClient(supervisor.host, supervisor.port) as client:
        for _ in range(2 * WORKERS):
            result = client.estimate("golden", list(CONFIG), [3200])
            if result["fingerprint"] != new:
                fail(
                    f"post-promotion reply still carries {result['fingerprint']}, "
                    f"candidate is {new}"
                )
    print(
        f"ok: promotion landed under load — {len(replies)} replies, "
        f"fingerprints {sorted(seen)}, zero torn, all-new after commit"
    )


def check_fleet_status(supervisor: FleetSupervisor) -> None:
    with ServeClient(supervisor.host, supervisor.port) as client:
        status = client.fleet_status()
    if not status.get("fleet") or len(status.get("workers", [])) != WORKERS:
        fail(f"fleet_status did not report {WORKERS} workers: {status}")
    if status["totals"]["requests"] < len(SIZES):
        fail(f"fleet_status under-counts requests: {status['totals']}")
    print(
        f"ok: fleet_status aggregates {len(status['workers'])} replicas "
        f"({status['totals']['requests']} requests, listener={status['listener']})"
    )


def check_cli_process() -> None:
    """A real ``repro serve --workers 2`` process: comes up, answers,
    reports the fleet, and drains on SIGINT."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--dir", f"golden={FIXTURE}", "--port", str(port),
         "--workers", str(WORKERS)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        deadline = time.monotonic() + 60.0
        while True:
            try:
                with socket.create_connection(("127.0.0.1", port), timeout=1.0):
                    break
            except OSError:
                if server.poll() is not None or time.monotonic() > deadline:
                    out = server.communicate()[0] if server.poll() is not None else ""
                    fail(f"repro serve --workers never came up on port {port}\n{out}")
                time.sleep(0.1)

        client = subprocess.run(
            [sys.executable, "-m", "repro", "client", "--port", str(port),
             "--op", "fleet_status"],
            env=env, capture_output=True, text=True, timeout=30,
        )
        if client.returncode != 0:
            fail(f"repro client fleet_status failed: {client.stderr}")
        reply = json.loads(client.stdout)
        if not reply["ok"] or len(reply["result"]["workers"]) != WORKERS:
            fail(f"fleet_status from the CLI process is wrong: {client.stdout}")
        server.send_signal(signal.SIGINT)
        out, _ = server.communicate(timeout=60)
        if server.returncode != 0:
            fail(f"repro serve --workers exited {server.returncode} on SIGINT\n{out}")
        if "replicas" not in out:
            fail(f"repro serve --workers did not report its fleet\n{out}")
        print("ok: repro serve --workers 2 answered fleet_status and drained on SIGINT")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def main() -> None:
    print(f"fleet smoke: {WORKERS} replicas against {FIXTURE.name}")
    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as tmp:
        root = Path(tmp)
        supervisor = FleetSupervisor(
            {"golden": FIXTURE},
            FleetConfig(workers=WORKERS, stats_interval_s=0.1),
        )
        with supervisor:
            print(
                f"fleet up on port {supervisor.port} "
                f"(listener={supervisor.listener})"
            )
            replies, elapsed = asyncio.run(
                fire_concurrent(
                    supervisor.host, supervisor.port, mixed_payloads(), concurrency=16
                )
            )
            print(f"ok: mixed workload {len(replies) / elapsed:.0f} rps")
            check_identity(replies)
            check_shared_residency(supervisor)
            check_fleet_status(supervisor)
            check_promotion_under_traffic(supervisor, root)
        print("ok: fleet drained cleanly")
    check_cli_process()
    print("fleet smoke passed")


if __name__ == "__main__":
    main()
