#!/usr/bin/env python
"""Trust, but verify: cross-checks between the independent substrates.

The repository contains several implementations of "the same thing" at
different fidelities; this example runs every cross-check so you can see
them agree:

1. numeric blocked LU vs SciPy, plus HPL's residual criterion;
2. the *distributed* LU (real messages over the event engine) vs the
   serial factorization — and its message counts vs the closed-form
   schedule the performance walker prices;
3. the event-driven NetPIPE probe vs the closed-form link model;
4. an HPL.dat sweep driven through the simulator.

Run:  python examples/validate_substrate.py
"""

import numpy as np
import scipy.linalg

from repro import ClusterConfig, kishimoto_cluster
from repro.cluster.placement import place_processes
from repro.hpl.hpldat import HPLDat, parse_hpl_dat, render_hpl_dat, run_dat
from repro.hpl.lu import blocked_lu, hpl_reference_run
from repro.hpl.parallel_lu import distributed_lu, expected_ring_messages
from repro.simnet.netpipe import probe_link, probe_transport, standard_block_sizes
from repro.simnet.transport import Transport
from repro.exts.grid2d import GridShape

spec = kishimoto_cluster()
KINDS = ("athlon", "pentium2")

print("== 1. numeric LU ==")
n = 96
a = np.random.default_rng(0).standard_normal((n, n))
lu_ours, piv_ours = blocked_lu(a.copy(), nb=32)
lu_scipy, piv_scipy = scipy.linalg.lu_factor(a)
print(f"   vs scipy.linalg.lu_factor: max |diff| = "
      f"{np.abs(lu_ours - lu_scipy).max():.2e}, pivots equal: "
      f"{np.array_equal(piv_ours, piv_scipy)}")
residual, passed, counter = hpl_reference_run(128, nb=32)
print(f"   HPL residual check at N=128: {residual:.3e} "
      f"({'PASSED' if passed else 'FAILED'}), {counter.total/1e6:.1f} Mflop counted")

print("\n== 2. distributed LU over the message-passing engine ==")
config = ClusterConfig.from_tuple(KINDS, (1, 1, 4, 1))
n, nb = 40, 8
a = np.random.default_rng(1).standard_normal((n, n))
result = distributed_lu(spec, config, a.copy(), nb=nb)
serial_lu, serial_piv = blocked_lu(a.copy(), nb=nb)
print(f"   5 processes, N={n}, NB={nb}: max |diff| vs serial = "
      f"{np.abs(result.lu - serial_lu).max():.2e}, pivots equal: "
      f"{np.array_equal(result.piv, serial_piv)}")
expected = expected_ring_messages(n, nb, config.total_processes)
print(f"   per-rank panel messages: {result.messages_sent} "
      f"(closed form: {expected}) -> "
      f"{'MATCH' if result.messages_sent == expected else 'MISMATCH'}")
print(f"   virtual execution time: {result.virtual_time * 1e3:.2f} ms "
      "(message-level, tiny N)")

print("\n== 3. NetPIPE: event engine vs closed form ==")
transport = Transport(
    spec, place_processes(spec, ClusterConfig.from_tuple(KINDS, (1, 2, 0, 0)))
)
blocks = standard_block_sizes(4096, 65536, points_per_octave=1)
event = probe_transport(transport, blocks, repeats=2)
closed = probe_link(spec.intranode, blocks)
worst = max(
    abs(e.throughput_bps - c.throughput_bps) / c.throughput_bps
    for e, c in zip(event, closed)
)
print(f"   worst relative difference over {len(blocks)} block sizes: {worst:.2e}")

print("\n== 4. HPL.dat sweep through the simulator ==")
dat = HPLDat(
    sizes=(1600, 3200),
    block_sizes=(64, 96),
    grids=(GridShape(1, 9), GridShape(3, 3)),
)
print(render_hpl_dat(dat))
assert parse_hpl_dat(render_hpl_dat(dat)) == dat
config = ClusterConfig.from_tuple(KINDS, (1, 1, 8, 1))
for r, (size, nbk, grid) in zip(run_dat(spec, config, dat), dat.runs()):
    print(f"   N={size:>5} NB={nbk:>3} grid={grid}:  "
          f"{r.wall_time_s:7.2f} s  {r.gflops:5.2f} Gflops")
print("\nAll substrates agree.")
