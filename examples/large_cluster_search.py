#!/usr/bin/env python
"""Future work, implemented: heuristic search on a larger cluster.

The paper's conclusion: "For larger clusters, it is essential to find a
way to reduce the search space.  Approximation algorithms (i.e.,
heuristics) are also worth considering."  This example builds a synthetic
five-generation cluster (two nodes per generation, rates spanning 16x),
uses an analytic objective with the real problem's structure, and compares
exhaustive enumeration against greedy growth and simulated annealing.

Run:  python examples/large_cluster_search.py
"""

import time

from repro import synthetic_cluster
from repro.analysis.tables import render_table
from repro.core.optimizer import ExhaustiveOptimizer
from repro.exts.heuristics import (
    GreedyGrowth,
    HillClimber,
    SimulatedAnnealing,
    full_candidate_space,
)

spec = synthetic_cluster([0.2, 0.4, 0.8, 1.6, 3.2], nodes_per_kind=2, cpus_per_node=1)
print(spec.describe(), "\n")

rates = {kind.name: kind.peak_gflops * 1e9 for kind in spec.kinds}


def objective(config, n):
    """Bottleneck-kind time + a P-growing communication tax — the shape the
    fitted models produce, in closed form so the example runs instantly."""
    p = config.total_processes
    work = (2.0 / 3.0) * float(n) ** 3
    slowest = max(
        work
        * alloc.processes
        / p
        / (rates[alloc.kind_name] * alloc.pe_count)
        * (1 + 0.05 * (alloc.procs_per_pe - 1))
        for alloc in config.active
    )
    return slowest + 2e-7 * float(n) ** 2 * (1 + 0.1 * p)


N = 20000
MAX_PROCS = 4

start = time.perf_counter()
space = full_candidate_space(spec, max_procs=MAX_PROCS)
exhaustive = ExhaustiveOptimizer(objective, space).optimize(N)
exhaustive_s = time.perf_counter() - start

methods = {
    "greedy growth": GreedyGrowth(spec, objective, max_procs=MAX_PROCS).search(N),
    "hill climbing (4 restarts)": HillClimber(spec, objective, max_procs=MAX_PROCS).search(
        N, restarts=4, seed=1
    ),
    "simulated annealing": SimulatedAnnealing(spec, objective, max_procs=MAX_PROCS).search(
        N, steps=600, seed=1
    ),
}

kinds = spec.kind_names
rows = [
    [
        "exhaustive",
        len(space),
        exhaustive.best.config.label(kinds),
        f"{exhaustive.best.estimate_s:.1f}",
        "1.000",
    ]
]
for label, stats in methods.items():
    rows.append(
        [
            label,
            stats.evaluations,
            stats.best_config.label(kinds),
            f"{stats.best_estimate:.1f}",
            f"{stats.best_estimate / exhaustive.best.estimate_s:.3f}",
        ]
    )

print(
    render_table(
        ["method", "evaluations", "best config", "estimate [s]", "vs optimal"],
        rows,
        title=f"Configuration search over {len(space):,} candidates (N={N:,})",
    )
)
print(
    f"\nexhaustive enumeration took {exhaustive_s:.2f} s here; on a model "
    "that costs milliseconds\nper estimate that is already minutes, and the "
    "space grows exponentially with kinds —\nthe heuristics reach ~optimal "
    "allocations with orders of magnitude fewer evaluations."
)
