#!/usr/bin/env python
"""Probe the messaging substrate NetPIPE-style (the paper's Figure 2).

Shows three things:

1. the two MPICH shared-memory curves (the cause of the paper's Figure 1
   multiprocessing anomaly);
2. that the event-driven simulated ping-pong agrees with the closed-form
   link model (the discrete-event engine is exercised for real);
3. the inter-node networks for comparison (the testbed had both 100base-TX
   and 1000base-SX; only the former was used in the paper).

Run:  python examples/netpipe_throughput.py
"""

from repro.analysis.tables import render_table
from repro.cluster.config import ClusterConfig
from repro.cluster.network import fast_ethernet, gigabit_sx
from repro.cluster.placement import place_processes
from repro.cluster.presets import single_node_cluster
from repro.simnet.mpich import mpich_1_2_1, mpich_1_2_2
from repro.simnet.netpipe import probe_link, probe_transport, standard_block_sizes
from repro.simnet.transport import Transport
from repro.units import to_gbps

blocks = standard_block_sizes(1024, 131072, points_per_octave=1)

links = {
    "mpich-1.2.1 (shm)": mpich_1_2_1(),
    "mpich-1.2.2 (shm)": mpich_1_2_2(),
    "100base-tx": fast_ethernet(),
    "1000base-sx": gigabit_sx(),
}
curves = {label: probe_link(link, blocks) for label, link in links.items()}

rows = []
for i, block in enumerate(blocks):
    rows.append(
        [f"{block / 1024:.0f} KB"]
        + [f"{to_gbps(curves[label][i].throughput_bps):.3f}" for label in links]
    )
print(
    render_table(
        ["block", *links.keys()],
        rows,
        title="Ping-pong throughput [Gbit/s] (closed form)",
    )
)

# Cross-check one curve against the event-driven engine: two processes on
# one Athlon CPU exchanging real (simulated) messages.
spec = single_node_cluster(mpich="1.2.2")
transport = Transport(spec, place_processes(spec, ClusterConfig.of(athlon=(1, 2))))
event_points = probe_transport(transport, blocks, repeats=3)
worst = max(
    abs(e.throughput_bps - c.throughput_bps) / c.throughput_bps
    for e, c in zip(event_points, curves["mpich-1.2.2 (shm)"])
)
print(
    f"\nevent-driven vs closed-form (mpich-1.2.2): worst relative "
    f"difference {worst:.2e} — the engine and the model agree."
)
print(
    "\nNote the 1.2.1 collapse past ~16-32 KB: HPL panels are megabytes, "
    "so every panel\nbroadcast between co-resident processes lands in the "
    "collapsed region — the paper's\nexplanation for why multiprocessing "
    "looked broken before MPICH 1.2.2."
)
