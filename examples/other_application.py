#!/usr/bin/env python
"""The paper's generality claim, executed: the same pipeline on SUMMA.

"Our approach is not limited to HPL but it is widely applicable to many
other applications."  Nothing in the model layer knows what HPL is — it
consumes per-kind (Ta, Tc) measurements.  Here we swap the application for
a SUMMA-style matrix multiplication (3x the flops of LU per matrix order,
different communication pattern, no pivoting) and run the identical
measure -> fit -> compose -> adjust -> optimize pipeline.

Run:  python examples/other_application.py
"""

from dataclasses import replace

from repro import EstimationPipeline, PipelineConfig, kishimoto_cluster
from repro.analysis.errors import evaluation_rows
from repro.analysis.tables import render_table
from repro.exts.apps import run_summa
from repro.measure.grids import nl_plan

spec = kishimoto_cluster()

# SUMMA keeps three matrices resident, so N = 6400 pages on a single
# Pentium-II node (1 GB footprint vs 768 MB RAM).  Keep construction sizes
# inside memory — see tests/integration/test_other_application.py for what
# happens if you don't (the paper's Section 3.4 memory-binning motivation).
plan = replace(
    nl_plan(),
    construction_sizes=(1200, 1600, 3200, 4800),
    evaluation_sizes=(1600, 3200, 4800),
)

pipeline = EstimationPipeline(
    spec,
    PipelineConfig(protocol="nl", seed=42, runner=run_summa, calibration_n=4800),
    plan=plan,
)

print(pipeline.store.summary())
print(f"adjustment: {pipeline.adjustment.describe()}\n")

rows = []
for row in evaluation_rows(pipeline):
    rows.append(
        [
            row.n,
            row.estimated_config.label(plan.kinds),
            f"{row.tau:.1f}",
            f"{row.tau_hat:.1f}",
            row.actual_config.label(plan.kinds),
            f"{row.t_hat:.1f}",
            f"{row.regret:+.1%}",
        ]
    )
print(
    render_table(
        ["N", "est. best", "tau", "tau^", "actual best", "T^", "regret"],
        rows,
        title="SUMMA (C = A @ B) through the unchanged estimation pipeline",
    )
)

print(
    "\nNote how SUMMA's higher compute/communication ratio moves the "
    "crossover: the full\ncluster already wins at N = 3200, where HPL still "
    "preferred the lone Athlon."
)
