#!/usr/bin/env python
"""Scenario: you just upgraded a homogeneous cluster with a fast node.

This is the situation the paper's introduction motivates: a lab owns four
dual Pentium-II nodes and adds one Athlon.  Conventional HPL distributes
work equally, so naively adding the fast node barely helps (it waits at
every synchronization).  The estimation pipeline answers, per problem
size: should the Athlon run alone, should the old nodes run alone, or
should they cooperate — and with how many processes on the Athlon?

Run:  python examples/cluster_upgrade.py
"""

from repro import ClusterConfig, EstimationPipeline, PipelineConfig, kishimoto_cluster
from repro.analysis.tables import render_table
from repro.hpl.driver import run_hpl

spec = kishimoto_cluster()
KINDS = ("athlon", "pentium2")

# The three "obvious" strategies people try by hand:
naive = {
    "old nodes only (P2 x 8)": ClusterConfig.from_tuple(KINDS, (0, 0, 8, 1)),
    "new node only (Athlon)": ClusterConfig.from_tuple(KINDS, (1, 1, 0, 0)),
    "everything, 1 proc/PE": ClusterConfig.from_tuple(KINDS, (1, 1, 8, 1)),
}

pipeline = EstimationPipeline(spec, PipelineConfig(protocol="nl", seed=7))

rows = []
for n in (1600, 3200, 4800, 6400, 8000, 9600):
    measured = {
        label: run_hpl(spec, config, n).wall_time_s for label, config in naive.items()
    }
    best = pipeline.optimize(n).best
    model_time = run_hpl(spec, best.config, n).wall_time_s
    naive_best = min(measured.values())
    rows.append(
        [
            n,
            *(f"{measured[label]:.1f}" for label in naive),
            best.config.label(KINDS),
            f"{model_time:.1f}",
            f"{(naive_best - model_time) / naive_best:+.1%}",
        ]
    )

print(
    render_table(
        ["N", *naive.keys(), "model's pick", "its time [s]", "vs best naive"],
        rows,
        title="Upgrading 4x dual-P-II with one Athlon: what should run where?",
    )
)

print(
    "\nReading: at small N the new node alone wins (communication would "
    "drown the old nodes);\nat large N the model invokes multiple processes "
    "on the Athlon to balance the load,\nbeating every naive strategy "
    "without touching the application."
)
