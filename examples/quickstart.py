#!/usr/bin/env python
"""Quickstart: estimate the optimal configuration of a heterogeneous
cluster in ~30 lines.

The scenario is the paper's: an Athlon 1.33 GHz node plus four dual
Pentium-II nodes, HPL as the application, and the question "which PEs
should run it, with how many processes each, for my problem size?"

Run:  python examples/quickstart.py
"""

from repro import EstimationPipeline, PipelineConfig, kishimoto_cluster
from repro.hpl.lu import hpl_reference_run

# 1. Describe the cluster (or build your own ClusterSpec).
spec = kishimoto_cluster()
print(spec.describe(), "\n")

# 2. Sanity-check the numeric substrate: this really factors matrices.
residual, passed, flops = hpl_reference_run(n=256, nb=64)
print(
    f"numeric HPL check: residual {residual:.3e} "
    f"({'PASSED' if passed else 'FAILED'}), {flops.total / 1e6:.1f} Mflop\n"
)

# 3. Run the NL protocol: measure the construction grid (simulated here;
#    on real hardware these are timed HPL runs), fit the N-T and P-T
#    models, compose the Athlon models, calibrate the adjustment.
pipeline = EstimationPipeline(spec, PipelineConfig(protocol="nl", seed=42))
print(f"measurement cost: {pipeline.campaign.total_cost_s:,.0f} simulated seconds")
print(pipeline.store.summary())
print(f"adjustment: {pipeline.adjustment.describe()}\n")

# 4. Ask for the best configuration at the size you care about.
for n in (1600, 4800, 9600):
    outcome = pipeline.optimize(n)
    best = outcome.best
    print(
        f"N={n:>5}: run as (P1,M1,P2,M2) = {best.config.label(pipeline.plan.kinds)}"
        f"  (estimated {best.estimate_s:,.1f} s, "
        f"search took {outcome.search_seconds * 1e3:.1f} ms)"
    )

# 5. Verify one decision against ground truth (a simulated measurement).
n = 9600
best = pipeline.optimize(n).best
actual_config, actual_time = pipeline.actual_best(n)
chosen_time = pipeline.measured_time(best.config, n)
print(
    f"\nverification at N={n}: chosen config runs in {chosen_time:,.1f} s; "
    f"true optimum {actual_config.label(pipeline.plan.kinds)} "
    f"runs in {actual_time:,.1f} s "
    f"(regret {(chosen_time - actual_time) / actual_time:+.1%})"
)
