#!/usr/bin/env python
"""How much measurement does a trustworthy model need?

The paper's central practical question: the Basic grid costs ~6 hours of
cluster time, NL ~3 hours, NS ~10 minutes.  This example runs all three
protocols and prints the cost-vs-quality frontier — including the NS
cautionary tale (cheap measurements at small N produce a model that
confidently makes terrible large-N decisions).

Run:  python examples/model_cost_tradeoff.py
"""

from repro import EstimationPipeline, PipelineConfig, kishimoto_cluster
from repro.analysis.errors import evaluation_rows
from repro.analysis.tables import render_table
from repro.units import pretty_seconds

spec = kishimoto_cluster()

rows = []
details = {}
for protocol in ("basic", "nl", "ns"):
    pipeline = EstimationPipeline(spec, PipelineConfig(protocol=protocol, seed=13))
    cost = pipeline.campaign.total_cost_s
    eval_rows = evaluation_rows(pipeline)
    large_n = [r for r in eval_rows if r.n >= 4800]
    rows.append(
        [
            protocol,
            pipeline.plan.construction_count,
            pretty_seconds(cost),
            f"{max(abs(r.estimate_error) for r in large_n):.1%}",
            f"{max(r.regret for r in large_n):.1%}",
        ]
    )
    details[protocol] = eval_rows

print(
    render_table(
        [
            "protocol",
            "runs",
            "measurement cost",
            "worst |est err| (N>=4800)",
            "worst regret (N>=4800)",
        ],
        rows,
        title="Measurement budget vs decision quality",
    )
)

print("\nThe NS failure, size by size:")
print(
    render_table(
        ["N", "NS thinks [s]", "reality [s]", "underestimation"],
        [
            [r.n, f"{r.tau:.1f}", f"{r.tau_hat:.1f}", f"{r.estimate_error:+.1%}"]
            for r in details["ns"]
        ],
    )
)
print(
    "\nMoral (the paper's): models must be constructed from problem sizes "
    "in the regime\nthey will decide about.  Small-N measurements see the "
    "efficiency ramp, not the\nasymptotic cubic cost, and no linear patch "
    "recovers the lost information."
)
