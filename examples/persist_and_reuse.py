#!/usr/bin/env python
"""Operations workflow: measure once, decide forever.

The expensive half of the method is the measurement campaign (hours of
cluster time); everything after it is milliseconds.  So the natural
deployment is: run the campaign once, persist what was learned, and let
any later session load the models and answer "how should I run N = X?"
instantly — no cluster access needed.

Run:  python examples/persist_and_reuse.py
"""

import tempfile
import time
from pathlib import Path

from repro import EstimationPipeline, PipelineConfig, kishimoto_cluster
from repro.core.persistence import load_pipeline, save_pipeline

workdir = Path(tempfile.mkdtemp(prefix="repro-pipeline-"))

# --- session 1: the one with cluster access -------------------------------
print("session 1: measuring and fitting (the expensive part)...")
started = time.perf_counter()
pipeline = EstimationPipeline(kishimoto_cluster(), PipelineConfig(protocol="nl", seed=3))
campaign_cost = pipeline.campaign.total_cost_s
_ = pipeline.store, pipeline.adjustment
saved_to = save_pipeline(pipeline, workdir / "nl-models")
print(
    f"  campaign: {campaign_cost:,.0f} s of simulated cluster time "
    f"({time.perf_counter() - started:.1f} s of real time here)"
)
print(f"  saved to {saved_to} ({sum(1 for _ in saved_to.iterdir())} files)\n")

# --- session 2: any later process, no cluster needed -----------------------
print("session 2: loading and deciding (the cheap part)...")
started = time.perf_counter()
restored = load_pipeline(saved_to)
load_s = time.perf_counter() - started

for n in (2000, 5000, 9000):
    tick = time.perf_counter()
    best = restored.optimize(n).best
    decide_ms = (time.perf_counter() - tick) * 1e3
    print(
        f"  N={n:>5}: run as {best.config.label(restored.plan.kinds)}  "
        f"(estimated {best.estimate_s:8.1f} s, decided in {decide_ms:.1f} ms)"
    )

print(
    f"\nload took {load_s * 1e3:.0f} ms; every decision reuses the one "
    f"{campaign_cost / 3600:.1f}-hour campaign.\nThe saved directory is plain "
    "JSON — auditable, diffable, and portable across machines."
)
