"""Robustness bench: outlier injection vs repeated-trial aggregation.

The paper times every construction configuration once.  On a machine with
occasional interference (a cron job, an NFS stall) a single outlier run
lands inside the least-squares fits.  This bench injects whole-run
outliers (8% of runs are 3x slower) and compares:

* single-shot campaigns (the paper's procedure) — decisions degrade;
* 3-trial median campaigns — decisions recover, at 3x measurement cost.
"""

from repro.analysis.tables import render_table
from repro.core.composition import CompositionPolicy
from repro.core.model_store import ModelStore
from repro.core.optimizer import ExhaustiveOptimizer
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.hpl.driver import NoiseSpec
from repro.measure.grids import nl_plan
from repro.measure.trials import run_campaign_with_trials

SEED = 77
DIRTY = NoiseSpec(outlier_probability=0.08, outlier_factor=3.0)


def _estimator_from(dataset, spec):
    store = ModelStore.fit_dataset(dataset)
    CompositionPolicy(mode="auto").compose_missing(store, "athlon", "pentium2")
    from repro.core.binning import ModelSelector

    selector = ModelSelector(store)

    def estimate(config, n):
        p = config.total_processes
        estimates = [
            selector.estimate_kind(a.kind_name, n, p, a.procs_per_pe)
            for a in config.active
        ]
        if not all(e.valid for e in estimates):
            return float("inf")  # model out of domain: never pick this
        return max(e.total for e in estimates)

    return estimate


def test_trials_beat_outliers(benchmark, spec, write_result):
    plan = nl_plan()
    # ground truth for regret: a clean pipeline's evaluation measurements
    truth = EstimationPipeline(spec, PipelineConfig(protocol="nl", seed=SEED))

    def worst_regret(dataset):
        estimator = _estimator_from(dataset, spec)
        optimizer = ExhaustiveOptimizer(estimator, list(plan.evaluation_configs))
        worst = 0.0
        for n in (4800, 6400, 9600):
            best = optimizer.optimize(n).best
            chosen = truth.measured_time(best.config, n)
            _, t_hat = truth.actual_best(n)
            worst = max(worst, (chosen - t_hat) / t_hat)
        return worst

    from repro.measure.campaign import run_campaign

    single_dirty = run_campaign(spec, plan, noise=DIRTY, seed=SEED)
    median3_dirty = run_campaign_with_trials(
        spec, plan, trials=3, how="median", noise=DIRTY, seed=SEED
    )
    min3_dirty = run_campaign_with_trials(
        spec, plan, trials=3, how="min", noise=DIRTY, seed=SEED
    )
    single_clean = run_campaign(spec, plan, noise=NoiseSpec(), seed=SEED)

    results = {
        "clean, 1 trial": (worst_regret(single_clean.dataset), single_clean.total_cost_s),
        "8% outliers, 1 trial": (
            worst_regret(single_dirty.dataset),
            single_dirty.total_cost_s,
        ),
        "8% outliers, 3-trial median": (
            worst_regret(median3_dirty.dataset),
            median3_dirty.total_cost_s,
        ),
        "8% outliers, 3-trial min": (
            worst_regret(min3_dirty.dataset),
            min3_dirty.total_cost_s,
        ),
    }
    write_result(
        "trials_vs_outliers",
        render_table(
            ["campaign", "worst regret (N>=4800)", "measurement cost [s]"],
            [
                [label, f"{regret:+.3f}", f"{cost:.0f}"]
                for label, (regret, cost) in results.items()
            ],
            title="Outlier injection vs repeated-trial aggregation (NL protocol)",
        ),
    )

    clean_regret = results["clean, 1 trial"][0]
    dirty_regret = results["8% outliers, 1 trial"][0]
    median_regret = results["8% outliers, 3-trial median"][0]
    min_regret = results["8% outliers, 3-trial min"][0]
    # repeated trials improve on single-shot; min (the classic for a
    # deterministic computation: all 3 trials must be outliers to pollute
    # it) restores clean-grade decisions
    assert median_regret < dirty_regret
    assert min_regret <= clean_regret + 0.03
    # ...and the robustness is honestly paid for
    assert results["8% outliers, 3-trial min"][1] > 2.5 * results["clean, 1 trial"][1]

    benchmark.pedantic(
        lambda: run_campaign_with_trials(
            spec, plan, trials=3, noise=DIRTY, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
