"""Extension bench: process-grid shape study (paper Section 3.1's "any
other process grid").

For the paper's cluster the 1 x P grid is actually sensible (pivoting over
rows of a Pr > 1 grid pays per-column all-reduces on fast Ethernet); on a
larger process count the near-square grid wins on broadcast volume.  This
bench quantifies both sides.
"""

from repro.analysis.tables import render_table
from repro.cluster.config import ClusterConfig
from repro.cluster.network import gigabit_sx
from repro.cluster.presets import synthetic_cluster
from repro.exts.grid2d import grid_shapes, simulate_schedule_2d

KINDS = ("athlon", "pentium2")


def test_grid_shape_study(benchmark, spec, write_result):
    config = ClusterConfig.from_tuple(KINDS, (1, 4, 8, 1))  # P = 12
    n = 8000
    rows = []
    times = {}
    for shape in grid_shapes(12):
        result = simulate_schedule_2d(spec, config, n, shape)
        times[str(shape)] = result.wall_time_s
        rows.append(
            [
                str(shape),
                f"{result.wall_time_s:.1f}",
                f"{result.phase_arrays['bcast'].mean():.1f}",
                f"{result.phase_arrays['mxswp'].sum():.2f}",
            ]
        )
    write_result(
        "grid2d_shapes",
        render_table(
            ["grid", "wall [s]", "mean bcast/proc [s]", "total mxswp [s]"],
            rows,
            title=f"Process-grid shapes, paper cluster, N={n}, P=12",
        ),
    )
    # 2-D grids trade broadcast volume against pivot communication; both
    # effects must be visible
    assert times["2x6"] != times["1x12"]

    # On a bigger, better-connected cluster the near-square grid wins.
    big = synthetic_cluster([0.5] * 4, nodes_per_kind=4, network=gigabit_sx())
    big_config = ClusterConfig.of(
        kind0=(4, 1), kind1=(4, 1), kind2=(4, 1), kind3=(4, 1)
    )
    flat = simulate_schedule_2d(big, big_config, 12000, grid_shapes(16)[0])
    square = simulate_schedule_2d(big, big_config, 12000, grid_shapes(16)[-1])
    assert square.phase_arrays["bcast"].mean() < flat.phase_arrays["bcast"].mean()

    benchmark(lambda: simulate_schedule_2d(spec, config, n, grid_shapes(12)[-1]))
