"""Figure 1: HPL Gflops of a single Athlon running n = 1..4 processes,
MPICH 1.2.1 vs 1.2.2.

Paper shape: with 1.2.1 multiprocessing collapses drastically (the Sasou
anomaly); with 1.2.2 the loss is much smaller.  The benchmark times one
full four-curve sweep.
"""

from repro.analysis.figures import fig1_series, series_table


def _render(version: str) -> str:
    series = fig1_series(version)
    return series_table(series, "N")


def test_fig01_multiprocessing(benchmark, write_result):
    tables = {}

    def run():
        tables["1.2.1"] = _render("1.2.1")
        tables["1.2.2"] = _render("1.2.2")
        return tables

    benchmark.pedantic(run, rounds=3, iterations=1)
    write_result(
        "fig01_multiprocessing",
        "Figure 1(a) — MPICH 1.2.1 [Gflops]\n"
        + tables["1.2.1"]
        + "\n\nFigure 1(b) — MPICH 1.2.2 [Gflops]\n"
        + tables["1.2.2"],
    )
    # shape assertions: the collapse is version-dependent
    old = fig1_series("1.2.1", sizes=[5000])
    new = fig1_series("1.2.2", sizes=[5000])
    loss_old = old[3].y[0] / old[0].y[0]
    loss_new = new[3].y[0] / new[0].y[0]
    assert loss_old < loss_new < 1.0
