"""Table 7: errors of the NL model's estimated best configurations.

Paper: despite using 4x fewer measurements than Basic, NL stays within
0%..4.3% regret across N = 1600..9600 (with up to -15% raw estimate error
when extrapolating to 9600).  The benchmark times the NL model fit plus
one optimization — the full "decide a configuration" path once
measurements exist.
"""

from repro.analysis.errors import evaluation_rows
from repro.analysis.report import verification_table
from repro.core.model_store import ModelStore


def test_table7_nl_errors(benchmark, nl_pipeline, write_result):
    write_result(
        "table7_nl_errors",
        f"Adjustment: {nl_pipeline.adjustment.describe()}\n\n"
        + verification_table(nl_pipeline),
    )

    rows = evaluation_rows(nl_pipeline)
    for row in rows:
        assert abs(row.estimate_error) < 0.16  # paper worst: -0.150
        assert row.regret <= 0.06  # paper worst: +0.043
    by_n = {row.n: row for row in rows}
    assert by_n[1600].picked_optimum  # small N: Athlon alone, exactly right

    dataset = nl_pipeline.campaign.dataset

    def fit_and_optimize():
        store = ModelStore.fit_dataset(dataset)
        return nl_pipeline.optimize(8000)

    benchmark(fit_and_optimize)
