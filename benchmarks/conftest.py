"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it computes
the experiment's data (cached, seeded pipelines), *prints* the rendered
rows/series so ``pytest benchmarks/ --benchmark-only -s`` shows them, and
writes them under ``benchmarks/results/`` so EXPERIMENTS.md can quote them.
The ``benchmark`` fixture times the computational core of each experiment
(model fitting, optimization, simulation sweeps).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cluster.presets import kishimoto_cluster
from repro.core.pipeline import EstimationPipeline, PipelineConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: One seed for every bench so the written results are a coherent campaign.
SEED = 2004


@pytest.fixture(scope="session")
def spec():
    return kishimoto_cluster()


@pytest.fixture(scope="session")
def basic_pipeline(spec):
    pipeline = EstimationPipeline(spec, PipelineConfig(protocol="basic", seed=SEED))
    _ = pipeline.store, pipeline.adjustment  # warm the caches
    return pipeline


@pytest.fixture(scope="session")
def nl_pipeline(spec):
    pipeline = EstimationPipeline(spec, PipelineConfig(protocol="nl", seed=SEED))
    _ = pipeline.store, pipeline.adjustment
    return pipeline


@pytest.fixture(scope="session")
def ns_pipeline(spec):
    pipeline = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=SEED))
    _ = pipeline.store, pipeline.adjustment
    return pipeline


@pytest.fixture(scope="session")
def write_result():
    """Persist a bench's rendered output and echo it to the terminal."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}")

    return _write
