"""Calibration loop costs: ingestion throughput and refit latency.

The observation log is on the serving hot path (every ``observe``
request appends a record and scores it against the promoted model), so
ingestion must be cheap; refits happen rarely but rebuild the whole
least-squares fit over seed-plus-observed data, so their latency bounds
how fast a drifted service can converge.  This bench measures both on a
10k-observation log: sustained ``Calibrator.ingest`` records/sec into a
file-backed JSONL log (residual scoring and Page-Hinkley included), and
the wall time of one ``Recalibrator.build_candidate`` + shadow
evaluation over that log.

Traffic repeats a realistic working set (the calibration family at a
handful of problem sizes), so scoring exercises the estimate cache the
way live traffic would.
"""

from __future__ import annotations

import itertools
import time

from repro.calibrate import Calibrator, ObservationLog, Recalibrator
from repro.hpl.driver import run_hpl_batch
from repro.measure.record import MeasurementRecord

TOTAL_OBSERVATIONS = 10_000
TRAFFIC_SIZES = (1600, 3200, 4800, 6400)


def traffic_records(pipeline):
    """The working set: calibration-family (heterogeneous) configs plus a
    few single-kind construction configs, so the stream both exercises
    the scoring path and actually moves the refit."""
    records = []
    kinds = pipeline.plan.kinds
    configs = list(pipeline.calibration_configs())
    configs += list(pipeline.plan.construction_configs[:4])
    for config in configs:
        results = run_hpl_batch(
            pipeline.spec, config, TRAFFIC_SIZES, noise=None, seed=7
        )
        records.extend(
            MeasurementRecord.from_result(result, kinds, seed=7)
            for result in results
        )
    return records


def test_calibration_costs(ns_pipeline, tmp_path, benchmark, write_result):
    working_set = traffic_records(ns_pipeline)
    stream = itertools.cycle(working_set)

    calibrator = Calibrator(
        "bench",
        pipeline_provider=lambda: ns_pipeline,
        log=ObservationLog(tmp_path / "observations.jsonl"),
    )

    started = time.perf_counter()
    for _ in range(TOTAL_OBSERVATIONS):
        calibrator.ingest(next(stream), source="bench")
    ingest_elapsed = time.perf_counter() - started
    ingest_rps = TOTAL_OBSERVATIONS / ingest_elapsed

    recalibrator = Recalibrator(holdout_fraction=0.25)
    fit_observations, holdout = recalibrator.split(calibrator.log.observations)
    started = time.perf_counter()
    candidate = recalibrator.build_candidate(ns_pipeline, fit_observations)
    refit_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    shadow = recalibrator.shadow_evaluate(
        candidate.pipeline, ns_pipeline, holdout[:64]
    )
    shadow_elapsed = time.perf_counter() - started

    lines = [
        f"observations ingested   {TOTAL_OBSERVATIONS:>8d}",
        f"ingestion               {ingest_rps:>8.0f} records/s "
        f"({ingest_elapsed:.2f}s, file-backed JSONL + residual scoring)",
        f"refit (build_candidate) {refit_elapsed:>8.2f} s "
        f"({candidate.fit_observations} observations, "
        f"{candidate.superseded_seed_records} seed records superseded)",
        f"shadow eval (64 held-out) {shadow_elapsed:>6.2f} s "
        f"(candidate {shadow.candidate.mean_abs_relative_error:.4f} vs "
        f"incumbent {shadow.incumbent.mean_abs_relative_error:.4f})",
    ]
    write_result("calibration", "\n".join(lines))

    # Acceptance bars (loose for CI runners): ingestion must sustain
    # hundreds of records/sec and a refit must land well under a minute.
    assert ingest_rps > 200, f"ingestion too slow: {ingest_rps:.0f}/s"
    assert refit_elapsed < 60, f"refit too slow: {refit_elapsed:.1f}s"
    assert candidate.fingerprint != ns_pipeline.estimate_cache.fingerprint

    benchmark.pedantic(
        lambda: recalibrator.build_candidate(ns_pipeline, fit_observations),
        rounds=1,
        iterations=1,
    )
