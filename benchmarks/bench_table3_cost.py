"""Table 3: HPL execution time for the Basic model's 486 construction
measurements, per kind and problem size.

Paper: Athlon 2180 s + Pentium-II 20689 s = 22869 s (~6 hours).  Our
simulated Athlon column matches within a few percent; the Pentium-II
multiprocess construction runs are slower than the paper's (see
EXPERIMENTS.md).  The benchmark times a full Basic construction campaign.
"""

from repro.analysis.report import cost_table
from repro.hpl.driver import NoiseSpec
from repro.measure.campaign import run_campaign
from repro.measure.grids import basic_plan


def test_table3_basic_measurement_cost(benchmark, spec, basic_pipeline, write_result):
    write_result("table3_basic_cost", cost_table(basic_pipeline))

    campaign = basic_pipeline.campaign
    athlon = campaign.cost_for_kind("athlon")
    pentium2 = campaign.cost_for_kind("pentium2")

    # paper anchors: Athlon 2180.2 s; P-II dominates the total
    assert abs(athlon - 2180.2) / 2180.2 < 0.10
    assert pentium2 > 5 * athlon
    # ~hours of cluster time overall (paper: 22869 s)
    assert 15_000 < campaign.total_cost_s < 60_000

    plan = basic_plan()

    def construction_campaign():
        return run_campaign(spec, plan, noise=NoiseSpec(), seed=1)

    benchmark.pedantic(construction_campaign, rounds=1, iterations=1)
