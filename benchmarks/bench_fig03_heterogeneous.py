"""Figure 3: HPL performance of heterogeneous subsets.

(a) load imbalance: "Ath x 1 + P2 x 4" sinks to "P2 x 5" level despite the
Athlon's speed, and the lone Athlon collapses at N = 10000 (memory).
(b) multiprocessing dissolves the imbalance, with the best n growing
with N.  The benchmark times the full two-panel sweep.
"""

from repro.analysis.figures import fig3a_series, fig3b_series, series_table


def test_fig03_heterogeneous(benchmark, spec, write_result):
    result = {}

    def run():
        result["a"] = fig3a_series(spec=spec)
        result["b"] = fig3b_series(spec=spec)
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
    write_result(
        "fig03_heterogeneous",
        "Figure 3(a) — load imbalance [Gflops]\n"
        + series_table(result["a"], "N")
        + "\n\nFigure 3(b) — multiprocessing [Gflops]\n"
        + series_table(result["b"], "N"),
    )

    a = {s.label: dict(zip(s.x, s.y)) for s in result["a"]}
    b = {s.label: dict(zip(s.x, s.y)) for s in result["b"]}

    # (a) the heterogeneous config is dragged toward the all-P2 level...
    assert a["Ath x 1 + P2 x 4"][8000] < 1.35 * a["P2 x 5"][8000]
    # ...and the lone Athlon hits the memory cliff at N=10000
    assert a["Athlon x 1"][10000] < 0.75 * a["Athlon x 1"][9000]

    # (b) multiprocessing recovers the lost performance at large N
    assert b["n = 3"][10000] > 1.15 * b["n = 1"][10000]
    # but hurts at small N (the paper's crossover story)
    assert b["n = 4"][2000] < b["n = 1"][2000]
