"""Extension bench: relative-error weighted fitting (future-work item 3).

The paper fits with unweighted least squares (GSL's default), so absolute
residuals at the largest sizes dominate and the fitted polynomial is
allowed to be wildly wrong — in *relative* terms — at small sizes
(the paper shrugs: "even 100% error means a negligible increase in
execution time" for N < 1600).  Weighting observations by 1/t^2 minimizes
relative error instead.

Measured on the overdetermined Basic fits (9 sizes; weighting is a no-op
for the NL/NS 4-point interpolations): the N-T model's small-N prediction
error collapses from ~36% to under 1% while costing ~1% at the largest
size, and decisions are unchanged.  A one-line improvement the paper left
on the table.
"""

from repro.analysis.errors import evaluation_rows
from repro.analysis.tables import render_table
from repro.core.model_store import ModelStore
from repro.core.pipeline import EstimationPipeline, PipelineConfig

SEED = 2004


def _nt_relative_error(pipeline, config_tuple, kind, n):
    record = pipeline.campaign.dataset.lookup(config_tuple, n)
    measured = record.kind(kind).ta
    model = pipeline.store.nt_model(
        kind, record.total_processes, record.procs_per_pe(kind)
    )
    return abs(model.predict_ta(n) - measured) / measured


def test_weighted_vs_uniform_fit(benchmark, spec, write_result):
    pipelines = {
        "uniform (paper)": EstimationPipeline(
            spec, PipelineConfig(protocol="basic", seed=SEED, nt_weighting="uniform")
        ),
        "relative (1/t^2)": EstimationPipeline(
            spec, PipelineConfig(protocol="basic", seed=SEED, nt_weighting="relative")
        ),
    }
    rows = []
    metrics = {}
    for label, pipeline in pipelines.items():
        err_small = _nt_relative_error(pipeline, (0, 0, 8, 1), "pentium2", 400)
        err_large = _nt_relative_error(pipeline, (0, 0, 8, 1), "pentium2", 6400)
        worst_regret = max(r.regret for r in evaluation_rows(pipeline))
        metrics[label] = (err_small, err_large, worst_regret)
        rows.append(
            [label, f"{err_small:.3f}", f"{err_large:.4f}", f"{worst_regret:+.3f}"]
        )
    write_result(
        "weighted_fit",
        render_table(
            [
                "N-T objective",
                "N-T rel. error @ N=400",
                "N-T rel. error @ N=6400",
                "worst regret (eval)",
            ],
            rows,
            title="Ablation: unweighted vs relative-error weighted N-T fits (Basic)",
        ),
    )

    u_small, u_large, u_regret = metrics["uniform (paper)"]
    w_small, w_large, w_regret = metrics["relative (1/t^2)"]
    # small-N fit error collapses...
    assert w_small < 0.2 * u_small
    # ...at negligible large-N cost...
    assert w_large < u_large + 0.02
    # ...without giving up decision quality
    assert w_regret <= u_regret + 0.03

    dataset = pipelines["uniform (paper)"].campaign.dataset
    benchmark(lambda: ModelStore.fit_dataset(dataset, weighting="relative"))
