"""Robustness bench: the headline tables across independent noise seeds.

Tables 4/7/9 (paper and reproduction alike) are single draws.  This sweep
re-runs the NL and NS protocols under five independent noise seeds and
reports the error *distributions*, establishing that:

* NL's decision quality is stable (low-single-digit regret on every seed);
* NS's catastrophic underestimation is structural (every seed fails).

(The Basic protocol is ~4x NL's cost per seed; NL carries the same
mechanisms, so the sweep uses NL as the "good model" representative.)
"""

from repro.analysis.seedsweep import SWEEP_HEADERS, sweep_protocol
from repro.analysis.tables import render_table

SEEDS = (101, 202, 303, 404, 505)


def test_seed_sweep_nl_vs_ns(benchmark, spec, write_result):
    nl = sweep_protocol(spec, "nl", SEEDS)
    ns = sweep_protocol(spec, "ns", SEEDS)

    write_result(
        "seed_sweep",
        render_table(
            SWEEP_HEADERS,
            [nl.summary_row(), ns.summary_row()],
            title=f"Error distributions over {len(SEEDS)} noise seeds (N >= 3200)",
        ),
    )

    # NL: stable, decision-grade on every seed
    assert nl.worst_regret.worst <= 0.08
    assert nl.worst_abs_error.worst <= 0.20
    # NS: structurally broken on every seed
    assert ns.worst_abs_error.best > 0.30  # even the luckiest seed misses badly
    assert ns.worst_regret.fraction_above(0.10) == 1.0
    # and the separation is unambiguous
    assert ns.worst_regret.best > nl.worst_regret.worst

    benchmark.pedantic(
        lambda: sweep_protocol(spec, "ns", SEEDS[:2]), rounds=1, iterations=1
    )
