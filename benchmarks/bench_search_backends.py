"""Extension bench: the Search protocol at and beyond the paper's scale.

Two instances, both synthetic (:mod:`repro.core.search.synthetic`) so the
objective has exactly the paper's ``max_i(Ta_i + Tc_i)`` structure with
zero measurement cost:

* **4 kinds x 4 PEs x 3 procs** (28 560 candidates) — small enough for
  the exhaustive baseline.  Gate: branch-and-bound finds the bitwise
  identical optimum in **>= 5x** fewer evaluations.
* **10 kinds x 50 PEs x 4 procs** (~1.1e23 candidates, the ROADMAP's
  datacenter) — exhaustive enumeration is physically impossible, so
  budgeted branch-and-bound provides the anytime reference and the
  heuristics are judged against it.  Gate: beam, hill-climb and anneal
  each land within 5% of branch-and-bound's best.  Greedy growth is
  reported but not gated: its one-kind-at-a-time growth cannot make the
  simultaneous multi-kind changes this instance's optimum requires (the
  structural limitation that motivated the jump moves the other
  searchers use).
"""

from repro.analysis.tables import render_table
from repro.core.search import create_search, synthetic_problem

#: Evaluation budget for branch-and-bound on the datacenter instance —
#: the interior walk is additionally capped at budget * work_factor
#: bound computations, which is what makes a 1e23-candidate space
#: terminate at all.
DATACENTER_BUDGET = 1000
GATED_HEURISTICS = ("beam", "hill-climb", "anneal")


def test_branch_bound_evaluation_gate(benchmark, write_result):
    problem = synthetic_problem(n_kinds=4, pes_per_kind=4, max_procs=3)
    n = 3000
    exhaustive = create_search("exhaustive", problem).optimize(n)
    bb = create_search("branch-bound", problem).optimize(n)

    # Exact backends agree bitwise on the winner.
    assert bb.best.config.key() == exhaustive.best.config.key()
    assert bb.best.estimate_s == exhaustive.best.estimate_s

    rows = [
        [
            "exhaustive",
            exhaustive.stats.evaluations,
            0,
            f"{exhaustive.best.estimate_s:.4f}",
        ],
        [
            "branch-bound",
            bb.stats.evaluations,
            bb.stats.pruned_candidates,
            f"{bb.best.estimate_s:.4f}",
        ],
    ]
    write_result(
        "search_branch_bound_4kind",
        render_table(
            ["backend", "evaluations", "pruned", "best [s]"],
            rows,
            title=(
                f"Exact search at N={n} "
                f"(4-kind synthetic, {problem.space.size} candidates)"
            ),
        ),
    )

    # The ISSUE gate: >= 5x fewer objective evaluations than exhaustive.
    assert bb.stats.evaluations * 5 <= exhaustive.stats.evaluations

    benchmark(lambda: create_search("branch-bound", problem).optimize(n))


def test_datacenter_scale_heuristics(write_result):
    problem = synthetic_problem()  # 10 kinds, 500 PEs, ~1.1e23 candidates
    n = 20000

    bb = create_search(
        "branch-bound", problem, budget=DATACENTER_BUDGET
    ).optimize(n)
    # Branch-and-bound must complete within its budget (the whole point
    # of the anytime mode: the space itself can never be covered).
    assert bb.stats.evaluations <= DATACENTER_BUDGET

    outcomes = {"branch-bound": bb}
    for tag in ("beam", "greedy", "hill-climb", "anneal"):
        outcomes[tag] = create_search(tag, problem).optimize(n)

    rows = [
        [
            tag,
            outcome.stats.evaluations,
            f"{outcome.best.estimate_s:.4f}",
            f"{outcome.best.estimate_s / bb.best.estimate_s:.3f}",
        ]
        for tag, outcome in outcomes.items()
    ]
    write_result(
        "search_datacenter_10kind",
        render_table(
            ["backend", "evaluations", "best [s]", "vs branch-bound"],
            rows,
            title=(
                f"Anytime search at N={n} (10-kind / 500-PE synthetic, "
                f"{problem.space.size:.2e} candidates, "
                f"branch-bound budget {DATACENTER_BUDGET})"
            ),
        ),
    )

    # Every gated heuristic lands within 5% of branch-and-bound's best.
    for tag in GATED_HEURISTICS:
        assert outcomes[tag].best.estimate_s <= 1.05 * bb.best.estimate_s, tag
    # And the best heuristic overall is at least as good as that.
    best_heuristic = min(
        outcomes[tag].best.estimate_s
        for tag in outcomes
        if tag != "branch-bound"
    )
    assert best_heuristic <= 1.05 * bb.best.estimate_s
