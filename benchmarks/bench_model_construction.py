"""Model-construction and search speed: the paper's micro-claims.

Paper Section 4: fitting all 54 Basic models takes 0.69 ms on an AthlonXP
2600+, and estimating 62 configurations x 5 sizes takes ~35 ms — i.e. the
method's cost is measurement, never math.  We reproduce the claims'
*structure*: model construction and exhaustive estimation are orders of
magnitude cheaper than a single construction measurement.
"""

from repro.core.model_store import ModelStore


def test_model_construction_speed(benchmark, basic_pipeline, write_result):
    dataset = basic_pipeline.campaign.dataset

    store = benchmark(lambda: ModelStore.fit_dataset(dataset))

    cheapest_measurement = min(r.wall_time_s for r in dataset)
    write_result(
        "model_construction_speed",
        f"Fitted {store.model_count} models ({len(store.nt)} N-T + "
        f"{len(store.pt)} P-T) in {store.build_seconds * 1e3:.2f} ms\n"
        f"(cheapest single construction measurement: "
        f"{cheapest_measurement:.2f} simulated seconds; paper: 0.69 ms "
        f"for 54 configurations)",
    )
    assert store.model_count == 60
    assert store.build_seconds < 0.25 * cheapest_measurement


def test_estimation_sweep_speed(benchmark, basic_pipeline, write_result):
    """62 configurations x 5 sizes, the paper's 35 ms workload."""
    optimizer = basic_pipeline.optimizer()
    sizes = basic_pipeline.plan.evaluation_sizes

    def full_sweep():
        return [optimizer.optimize(n) for n in sizes]

    outcomes = benchmark(full_sweep)
    total = sum(o.search_seconds for o in outcomes)
    write_result(
        "estimation_sweep_speed",
        f"Estimated {len(outcomes) * 62} (config, N) pairs in "
        f"{total * 1e3:.1f} ms (paper: ~35 ms on an AthlonXP 2600+)",
    )
    assert total < 30.0
