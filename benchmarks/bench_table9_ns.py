"""Table 9: errors of the NS model's estimated best configurations — the
paper's cautionary tale.

Paper: NS (fitted on N = 400..1600, ten minutes of measurement) looks fine
at N = 1600 but underestimates execution times by 30%..94% for N >= 3200,
keeps choosing undersized configurations (the Athlon alone), and pays
28%..82% regret.  The benchmark times the NS end-to-end decision path.
"""

from repro.analysis.errors import evaluation_rows
from repro.analysis.report import verification_table


def test_table9_ns_errors(benchmark, ns_pipeline, basic_pipeline, write_result):
    write_result(
        "table9_ns_errors",
        f"Adjustment: {ns_pipeline.adjustment.describe()}\n\n"
        + verification_table(ns_pipeline),
    )

    rows = evaluation_rows(ns_pipeline)
    by_n = {row.n: row for row in rows}

    # fine at a construction size...
    assert abs(by_n[1600].estimate_error) < 0.05
    # ...catastrophic underestimation beyond it (paper: -30%..-94%)
    for n in (4800, 6400, 8000, 9600):
        assert by_n[n].estimate_error < -0.30
    # materially worse decisions than the Basic model
    ns_worst = max(row.regret for row in rows if row.n >= 3200)
    basic_worst = max(
        row.regret for row in evaluation_rows(basic_pipeline)
    )
    assert ns_worst > 0.10 and ns_worst > 2 * basic_worst

    benchmark(lambda: ns_pipeline.optimize(9600))
