"""Substrate performance: the HPL schedule walker itself.

Measurement campaigns simulate hundreds of runs; the walker must stay in
the millisecond range per run for the harness to regenerate every table in
seconds.  This bench tracks the walker's throughput at the paper's largest
evaluation size and the 2-D variant's overhead.
"""

from repro.cluster.config import ClusterConfig
from repro.exts.grid2d import GridShape, simulate_schedule_2d
from repro.hpl.schedule import simulate_schedule

KINDS = ("athlon", "pentium2")


def _config():
    return ClusterConfig.from_tuple(KINDS, (1, 4, 8, 1))


def test_schedule_walker_speed(benchmark, spec):
    config = _config()
    result = benchmark(lambda: simulate_schedule(spec, config, 9600))
    assert result.wall_time_s > 0


def test_schedule_walker_2d_speed(benchmark, spec):
    config = _config()
    result = benchmark(
        lambda: simulate_schedule_2d(spec, config, 9600, GridShape(3, 4))
    )
    assert result.wall_time_s > 0
