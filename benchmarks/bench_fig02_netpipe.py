"""Figure 2: intra-node communication throughput vs block size for MPICH
1.2.1 and 1.2.2, measured NetPIPE-style.

Paper shape: 1.2.2 saturates near 2.2 Gbit/s; 1.2.1 peaks mid-size and
collapses for large blocks.  The benchmark times the event-driven
ping-pong probe (the closed-form sweep is effectively free).
"""

from repro.analysis.figures import fig2_series, series_table
from repro.cluster.config import ClusterConfig
from repro.cluster.placement import place_processes
from repro.cluster.presets import single_node_cluster
from repro.simnet.netpipe import probe_transport, standard_block_sizes
from repro.simnet.transport import Transport
from repro.units import to_gbps


def test_fig02_netpipe(benchmark, write_result):
    series = fig2_series()
    write_result(
        "fig02_netpipe",
        "Figure 2 — intra-node throughput [Gbit/s] vs block size [KB]\n"
        + series_table(series, "KB"),
    )

    spec = single_node_cluster(cpus=1, mpich="1.2.2")
    transport = Transport(
        spec, place_processes(spec, ClusterConfig.of(athlon=(1, 2)))
    )
    blocks = standard_block_sizes()

    def event_driven_probe():
        return probe_transport(transport, blocks, repeats=3)

    points = benchmark(event_driven_probe)
    # event-driven and closed-form agree at the largest block
    closed = dict(zip(series[1].x, series[1].y))
    assert to_gbps(points[-1].throughput_bps) > 1.8
    # version shapes
    by_label = {s.label: s for s in series}
    assert max(by_label["mpich-1.2.2"].y) > 2.0
    old = by_label["mpich-1.2.1"].y
    assert old[-1] < max(old) / 2  # the large-block collapse
