"""Figures 12-15: NS-model correlation scatter — the failure figures.

Paper: at N = 1600 (inside the NS construction range) the fit is
tolerable; extrapolated to N = 6400 the scatter departs wildly from the
diagonal, and the linear transformation cannot repair it (distinct residue
of deviations, Figure 15).
"""

from repro.analysis.correlation import correlation_data
from repro.analysis.figures import ascii_scatter


def _panel(pipeline, n, adjusted, caption):
    data = correlation_data(pipeline, n)
    return (
        f"{caption}\n"
        f"R^2 = {data.r_squared(adjusted=adjusted):.4f}, "
        f"mean |dev| = {data.mean_abs_deviation(adjusted=adjusted):.3f}\n"
        + ascii_scatter(data, adjusted=adjusted)
    )


def test_fig12_15_ns_correlation(benchmark, ns_pipeline, write_result):
    panels = [
        _panel(ns_pipeline, 1600, False, "Figure 12 — NS, N=1600, original"),
        _panel(ns_pipeline, 1600, True, "Figure 13 — NS, N=1600, adjusted"),
        _panel(ns_pipeline, 6400, False, "Figure 14 — NS, N=6400, original"),
        _panel(ns_pipeline, 6400, True, "Figure 15 — NS, N=6400, adjusted"),
    ]
    write_result("fig12_15_ns_correlation", "\n\n".join(panels))

    small = correlation_data(ns_pipeline, 1600)
    large = correlation_data(ns_pipeline, 6400)
    # tolerable inside the construction range (Fig. 12: the raw fit)...
    assert small.mean_abs_deviation(adjusted=False) < 0.35
    # ...but extrapolation leaves a residue no linear map removes (Fig. 15);
    # worse, the scales calibrated at N=6400 are so extreme for NS that
    # they *hurt* the construction-range fit — the paper itself flags the
    # transformation as "an ad hoc treatment" rather than a fix.
    assert large.mean_abs_deviation(adjusted=True) > 0.15
    assert large.mean_abs_deviation(adjusted=False) > 3 * small.mean_abs_deviation(
        adjusted=False
    )

    benchmark(lambda: correlation_data(ns_pipeline, 6400))
