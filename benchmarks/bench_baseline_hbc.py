"""Baseline comparison: the paper's method vs heterogeneous distribution.

The paper's related work (Kalinov-Lastovetsky, Beaumont et al., Sasou et
al.) *rewrites* applications to deal work in proportion to PE speed and
always uses every PE.  The paper's method keeps the application unmodified
and instead picks the PE subset + process allocation.  This bench runs the
head-to-head the paper argues but never tabulates:

* **HBC baseline** — 1 process/PE on all 9 PEs, speed-weighted columns;
* **paper's method** — the NL pipeline's chosen configuration, measured;
* **equal distribution, all PEs** — what unmodified HPL does naively.
"""

from repro.analysis.tables import render_table
from repro.cluster.config import ClusterConfig
from repro.exts.baselines import run_hbc
from repro.hpl.driver import run_hpl

KINDS = ("athlon", "pentium2")


def test_hbc_vs_paper_method(benchmark, spec, nl_pipeline, write_result):
    all_pes = ClusterConfig.from_tuple(KINDS, (1, 1, 8, 1))
    rows = []
    ratios = {}
    for n in (1600, 3200, 4800, 6400, 9600):
        naive = run_hpl(spec, all_pes, n).wall_time_s
        hbc = run_hbc(spec, all_pes, n).wall_time_s
        chosen = nl_pipeline.optimize(n).best.config
        paper = run_hpl(spec, chosen, n).wall_time_s
        ratios[n] = (hbc, paper)
        rows.append(
            [
                n,
                f"{naive:.1f}",
                f"{hbc:.1f}",
                f"{paper:.1f}",
                chosen.label(KINDS),
                f"{(hbc - paper) / paper:+.1%}",
            ]
        )
    write_result(
        "baseline_hbc",
        render_table(
            [
                "N",
                "equal dist, all PEs [s]",
                "HBC (weighted, all PEs) [s]",
                "paper's method [s]",
                "its config",
                "HBC vs paper",
            ],
            rows,
            title="Rewriting the app (HBC) vs modeling the cluster (the paper)",
        ),
    )

    # the paper's critique holds: HBC cannot exclude slow PEs, so it loses
    # where communication dominates...
    hbc_small, paper_small = ratios[1600]
    assert hbc_small > 1.3 * paper_small
    # ...and the paper's honesty holds too: a rewritten application beats
    # the no-rewrite method at scale (no oversubscription tax) — "our
    # method does not aim to extract the maximum performance" (Section 1)
    hbc_large, paper_large = ratios[9600]
    assert hbc_large < paper_large

    benchmark(lambda: run_hbc(spec, all_pes, 6400))
