"""Grid-kernel bench: candidate-axis vectorization across the search layer.

The 4-kind synthetic instance (28 560 candidates, the same instance
``bench_search_backends`` uses for its exact-search gate) pits each
backend's grid path against its scalar reference — the identical backend
with the kernel unplugged, so both sides run the same control flow and
produce bitwise-equal outcomes (asserted before any timing is trusted).

Gates (from the ISSUE):

* **exhaustive, full space**: ranking all 28 560 candidates through the
  grid estimator is **>= 10x** faster than the per-candidate scalar loop;
* **beam/anneal frontier rounds**: evaluating a round's deduplicated
  neighbor frontier as one block is **>= 3x** faster than evaluating it
  state by state.

Alongside the rendered tables this bench writes machine-readable numbers
to ``benchmarks/results/search_grid.json`` so tooling can trend the
speedups without parsing text.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.analysis.tables import render_table
from repro.core.search import create_search, synthetic_problem

RESULTS_DIR = Path(__file__).parent / "results"

N = 4000
EXHAUSTIVE_GATE = 10.0
FRONTIER_GATE = 3.0
JSON_PATH = RESULTS_DIR / "search_grid.json"


def _problem():
    return synthetic_problem(n_kinds=4, pes_per_kind=4, max_procs=3)


def _scalar_problem(problem):
    return dataclasses.replace(problem, grid_estimator=None)


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _merge_json(update: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data.update(update)
    JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_exhaustive_full_space_gate(benchmark, write_result):
    problem = _problem()
    grid = create_search("exhaustive", problem)
    scalar = create_search("exhaustive", _scalar_problem(problem))

    # Bitwise equivalence first; a fast wrong answer gates nothing.
    grid_outcome = grid.optimize(N)
    scalar_outcome = scalar.optimize(N)
    assert [(e.config.key(), e.estimate_s) for e in grid_outcome.ranking] == [
        (e.config.key(), e.estimate_s) for e in scalar_outcome.ranking
    ]

    grid_s = _best_of(lambda: grid.optimize(N), 3)
    scalar_s = _best_of(lambda: scalar.optimize(N), 2)
    speedup = scalar_s / grid_s

    candidates = len(grid.candidates)
    write_result(
        "search_grid_exhaustive",
        render_table(
            ["path", "seconds", "candidates/s"],
            [
                ["scalar", f"{scalar_s:.4f}", f"{candidates / scalar_s:,.0f}"],
                ["grid", f"{grid_s:.4f}", f"{candidates / grid_s:,.0f}"],
                ["speedup", f"{speedup:.1f}x", ""],
            ],
            title=(
                f"Exhaustive ranking of {candidates} candidates at N={N} "
                "(4-kind synthetic)"
            ),
        ),
    )
    _merge_json(
        {
            "exhaustive": {
                "candidates": candidates,
                "scalar_seconds": scalar_s,
                "grid_seconds": grid_s,
                "speedup": speedup,
                "gate": EXHAUSTIVE_GATE,
            }
        }
    )

    assert speedup >= EXHAUSTIVE_GATE, (
        f"grid exhaustive speedup {speedup:.1f}x below the "
        f"{EXHAUSTIVE_GATE:.0f}x gate"
    )
    benchmark(lambda: grid.optimize(N))


def _captured_frontiers(problem, tag: str):
    """The deduplicated neighbor frontiers a real run of ``tag`` block-
    evaluates, as config lists (captured by instrumenting ``_prefetch``)."""
    backend = create_search(tag, problem)
    frontiers = []
    original = backend._prefetch

    def capture(frontier, n, stats):
        frontiers.append(list(dict.fromkeys(frontier)))
        return original(frontier, n, stats)

    backend._prefetch = capture
    backend.optimize(N)
    return [
        [backend._to_config(state) for state in frontier]
        for frontier in frontiers
        if len(frontier) >= 4
    ]


def test_frontier_round_gate(write_result):
    problem = _problem()
    estimator = problem.estimator
    grid_estimator = problem.grid_estimator

    rows = []
    results = {}
    for tag in ("beam", "anneal"):
        frontiers = _captured_frontiers(problem, tag)
        assert frontiers, f"{tag} produced no frontier rounds to measure"

        def scalar_rounds():
            for configs in frontiers:
                for config in configs:
                    estimator(config, N)

        def grid_rounds():
            for configs in frontiers:
                grid_estimator(configs, [N])

        scalar_s = _best_of(scalar_rounds, 5)
        grid_s = _best_of(grid_rounds, 5)
        speedup = scalar_s / grid_s
        states = sum(len(f) for f in frontiers)
        rows.append(
            [
                tag,
                len(frontiers),
                states,
                f"{scalar_s * 1e3:.2f}",
                f"{grid_s * 1e3:.2f}",
                f"{speedup:.1f}x",
            ]
        )
        results[tag] = {
            "rounds": len(frontiers),
            "states": states,
            "scalar_seconds": scalar_s,
            "grid_seconds": grid_s,
            "speedup": speedup,
            "gate": FRONTIER_GATE,
        }

    write_result(
        "search_grid_frontiers",
        render_table(
            ["backend", "rounds", "states", "scalar [ms]", "grid [ms]", "speedup"],
            rows,
            title=(
                f"Frontier-round block evaluation at N={N} "
                "(4-kind synthetic)"
            ),
        ),
    )
    _merge_json({"frontier_rounds": results})

    for tag, entry in results.items():
        assert entry["speedup"] >= FRONTIER_GATE, (
            f"{tag} frontier-round speedup {entry['speedup']:.1f}x below "
            f"the {FRONTIER_GATE:.0f}x gate"
        )
