"""What-if bench: the gigabit network the paper never used.

The testbed had 1000base-SX installed but every measurement ran over
100base-TX.  The substrate can answer what the paper could have measured:
with a ~7x faster interconnect, communication stops punishing wide
configurations, so the full cluster wins from *smaller* N and higher
Athlon process counts become viable earlier — the crossover structure of
Tables 4/7 is a property of the network, not of the machines.
"""

from repro.analysis.whatif import compare_variants, comparison_table
from repro.cluster.presets import kishimoto_cluster

SIZES = (1600, 3200, 4800, 9600)


def test_whatif_gigabit_network(benchmark, write_result):
    variants = {
        "100base-tx (paper)": kishimoto_cluster(network="100base-tx"),
        "1000base-sx (installed, unused)": kishimoto_cluster(network="1000base-sx"),
    }
    outcomes = compare_variants(variants, protocol="nl", seed=2004, sizes=SIZES)
    kinds = ("athlon", "pentium2")
    write_result("whatif_network", comparison_table(outcomes, kinds))

    fast_eth, gigabit = outcomes

    # gigabit is never slower at the optimum...
    for n in SIZES:
        assert gigabit.time_at(n) <= fast_eth.time_at(n) * 1.02
    # ...and moves the athlon-only -> cluster crossover down: at N=3200 the
    # fast network's optimum already uses the Pentium-IIs
    assert fast_eth.config_at(3200).pe_count("pentium2") == 0
    assert gigabit.config_at(3200).pe_count("pentium2") > 0
    # at scale the speedup from the better network is substantial
    assert gigabit.time_at(9600) < 0.9 * fast_eth.time_at(9600)

    benchmark.pedantic(
        lambda: compare_variants(
            {"gig": variants["1000base-sx (installed, unused)"]},
            protocol="nl",
            seed=2004,
            sizes=(3200,),
        ),
        rounds=1,
        iterations=1,
    )
