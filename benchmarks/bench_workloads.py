"""Workload kernel bench: vectorized batch runners vs scalar references.

Each workload family ships two implementations of its simulator: the
vectorized batch kernel the campaigns actually run, and a straight-line
scalar reference (``simulate_*_reference``) kept for auditability.  This
bench sweeps one config across a 64-size batch per family and gates the
batch runner at >= 5x the looped scalar reference — while asserting the
two paths agree (allclose; the no-noise batch path and the reference
differ only in floating-point reduction order).

Results land in ``benchmarks/results/workload_kernels.txt``.
"""

import time

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.cluster.config import ClusterConfig
from repro.measure.grids import PAPER_KINDS
from repro.workloads import run_montecarlo_batch, run_sorting_batch
from repro.workloads.montecarlo import simulate_montecarlo_reference
from repro.workloads.sorting import simulate_sorting_reference

CONFIG = (1, 4, 8, 1)
SIZES = tuple(2000 + 100 * i for i in range(64))
SPEEDUP_FLOOR = 5.0

FAMILIES = {
    "sorting": (run_sorting_batch, simulate_sorting_reference),
    "montecarlo": (run_montecarlo_batch, simulate_montecarlo_reference),
}


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_workload_batch_runners_beat_scalar_references(
    benchmark, spec, write_result
):
    config = ClusterConfig.from_tuple(PAPER_KINDS, CONFIG)
    rows = []
    for family, (batch, reference) in FAMILIES.items():
        batch(spec, config, SIZES[:2])  # warm numpy / placement caches
        scalar_s, scalar = _best_of(
            2, lambda: [reference(spec, config, n) for n in SIZES]
        )
        batch_s, batched = _best_of(3, lambda: batch(spec, config, SIZES))

        for a, b in zip(scalar, batched):
            assert b.wall_time_s == pytest.approx(a.wall_time_s, rel=1e-9)
            for name, values in a.phase_arrays.items():
                np.testing.assert_allclose(
                    b.phase_arrays[name], values, rtol=1e-9
                )

        speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
        rows.append(
            [
                f"{family} ({len(SIZES)} sizes)",
                f"{scalar_s * 1e3:.1f}",
                f"{batch_s * 1e3:.1f}",
                f"{speedup:.1f}x",
            ]
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"{family} batch runner speedup {speedup:.2f}x < "
            f"{SPEEDUP_FLOOR}x over the scalar reference"
        )

    write_result(
        "workload_kernels",
        render_table(
            ["kernel", "scalar [ms]", "batched [ms]", "speedup"],
            rows,
            title=f"Workload batch runners vs scalar references ({CONFIG})",
        ),
    )
    benchmark.pedantic(
        lambda: run_sorting_batch(spec, config, SIZES), rounds=3, iterations=1
    )
