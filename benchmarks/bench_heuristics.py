"""Extension bench: heuristic search vs exhaustive enumeration.

The paper's Section 5: "for larger clusters, it is essential to find a
way to reduce the search space.  Approximation algorithms (i.e.,
heuristics) are also worth considering."  We quantify this on the paper's
own cluster (342 configurations with M <= 6) and on a synthetic five-kind
cluster (16k+ configurations), using the fitted NL estimator as the
objective.
"""

from repro.analysis.tables import render_table
from repro.core.optimizer import ExhaustiveOptimizer
from repro.exts.heuristics import (
    GreedyGrowth,
    SimulatedAnnealing,
    full_candidate_space,
)


def test_heuristics_vs_exhaustive_paper_cluster(
    benchmark, spec, nl_pipeline, write_result
):
    estimator = nl_pipeline.estimator()
    n = 8000
    space = full_candidate_space(spec, max_procs=6)
    exhaustive = ExhaustiveOptimizer(estimator, space).optimize(n)

    greedy = GreedyGrowth(spec, estimator).search(n)
    annealing = SimulatedAnnealing(spec, estimator).search(n, steps=300, seed=1)

    kinds = nl_pipeline.plan.kinds
    rows = [
        [
            "exhaustive",
            len(space),
            exhaustive.best.config.label(kinds),
            f"{exhaustive.best.estimate_s:.1f}",
        ],
        [
            "greedy growth",
            greedy.evaluations,
            greedy.best_config.label(kinds),
            f"{greedy.best_estimate:.1f}",
        ],
        [
            "simulated annealing",
            annealing.evaluations,
            annealing.best_config.label(kinds),
            f"{annealing.best_estimate:.1f}",
        ],
    ]
    write_result(
        "heuristics_paper_cluster",
        render_table(
            ["method", "evaluations", "best config", "estimate [s]"],
            rows,
            title=f"Search-space reduction at N={n} (paper cluster, 342 candidates)",
        ),
    )

    # heuristics must come within 5% of the exhaustive optimum at a
    # fraction of the evaluations
    assert greedy.best_estimate <= exhaustive.best.estimate_s * 1.05
    assert annealing.best_estimate <= exhaustive.best.estimate_s * 1.05
    assert greedy.evaluations < len(space) / 3

    benchmark(lambda: GreedyGrowth(spec, estimator).search(n))
