"""Extension bench: cost-aware Pareto frontiers with pruned search.

One instance — **4 kinds x 4 PEs x 3 procs** (28 560 candidates) with the
superlinear synthetic rate card, so time and dollars genuinely conflict
and the frontier has interior points.  The brute-force reference
(:func:`enumerate_frontier`) evaluates every candidate; the
``budget-frontier`` backend prunes subtrees whose best possible
``(time, cost)`` corner is already strictly dominated by the archive.

Gates:

* the pruned frontier is **bitwise** the enumerated one — pruning may
  never change the answer, only its price;
* the pruned search spends **>= 3x** fewer objective evaluations than
  brute force (measured: hundreds-fold on this instance).
"""

from repro.analysis.tables import render_table
from repro.core.search import create_search, synthetic_problem
from repro.cost.pareto import enumerate_frontier
from repro.cost.presets import synthetic_rate_card

N = 3000


def _problem():
    problem = synthetic_problem(n_kinds=4, pes_per_kind=4, max_procs=3)
    problem.cost = synthetic_rate_card(n_kinds=4)
    return problem


def test_pruned_frontier_evaluation_gate(benchmark, write_result):
    problem = _problem()
    brute = enumerate_frontier(
        problem.estimator, problem.resolved_candidates(), N, problem.cost
    )
    pruned = create_search("budget-frontier", problem).frontier(N)

    # Exactness first: bitwise the same frontier, point for point.
    assert pruned.complete
    got = [
        (p.config.key(), p.time_s, p.dollars, p.energy_wh)
        for p in pruned.points
    ]
    want = [
        (p.config.key(), p.time_s, p.dollars, p.energy_wh)
        for p in brute.points
    ]
    assert got == want

    rows = [
        [
            "enumerate-frontier",
            brute.stats.evaluations,
            0,
            len(brute.points),
        ],
        [
            "budget-frontier",
            pruned.stats.evaluations,
            pruned.stats.pruned_candidates,
            len(pruned.points),
        ],
    ]
    write_result(
        "pareto_4kind_frontier",
        render_table(
            ["backend", "evaluations", "pruned", "frontier points"],
            rows,
            title=(
                f"Pareto frontier at N={N} "
                f"(4-kind synthetic, {problem.space.size} candidates, "
                f"{brute.stats.evaluations // max(pruned.stats.evaluations, 1)}x "
                "fewer evaluations pruned)"
            ),
        ),
    )

    # The ISSUE gate: >= 3x fewer objective evaluations than brute force.
    assert pruned.stats.evaluations * 3 <= brute.stats.evaluations

    benchmark(lambda: create_search("budget-frontier", _problem()).frontier(N))


def test_max_cost_prunes_harder(write_result):
    problem = _problem()
    unconstrained = create_search("budget-frontier", _problem()).frontier(N)
    cap = unconstrained.points[len(unconstrained.points) // 2].dollars
    capped = create_search("budget-frontier", problem, max_cost=cap).frontier(N)

    assert all(p.dollars <= cap for p in capped.points)
    # The cost bound is an additional pruning axis, never extra work.
    assert capped.stats.evaluations <= unconstrained.stats.evaluations

    write_result(
        "pareto_4kind_max_cost",
        render_table(
            ["run", "evaluations", "frontier points"],
            [
                ["unconstrained", unconstrained.stats.evaluations,
                 len(unconstrained.points)],
                [f"max_cost={cap:.3g}", capped.stats.evaluations,
                 len(capped.points)],
            ],
            title=f"Cost-capped frontier pruning at N={N}",
        ),
    )
