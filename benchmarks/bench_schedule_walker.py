"""Schedule-walker bench: the vectorized multi-size panel sweep.

The evaluation grid of the basic protocol — 62 configurations x 5 problem
sizes — simulated two ways:

* **scalar** — the reference per-panel Python loop, one
  :func:`simulate_schedule` call per (config, N) cell;
* **batched** — one :func:`simulate_schedule_batch` call per
  configuration, walking all five sizes as a padded ``(sizes, panels,
  ranks)`` grid of NumPy array ops.

The batched walker promises *bitwise* equality with the reference loop
(same IEEE operations in the same order), so the bench asserts exact
wall-clock and per-phase agreement before it asserts the >= 10x speedup.
Results land in ``benchmarks/results/schedule_walker.txt``.
"""

import time

import numpy as np

from repro.analysis.tables import render_table
from repro.hpl.schedule import (
    clear_panel_tables,
    reset_walker_stats,
    simulate_schedule,
    simulate_schedule_batch,
    walker_stats,
)
from repro.hpl.timing import PHASE_NAMES
from repro.measure.grids import basic_plan

MIN_SPEEDUP = 10.0


def test_schedule_walker(benchmark, spec, write_result):
    plan = basic_plan()
    configs = plan.evaluation_configs
    sizes = list(plan.evaluation_sizes)
    cells = len(configs) * len(sizes)

    clear_panel_tables()
    reset_walker_stats()

    started = time.perf_counter()
    scalar = {
        config.key(): [simulate_schedule(spec, config, n) for n in sizes]
        for config in configs
    }
    scalar_s = time.perf_counter() - started

    # Cold batched pass: panel tables are built, not reused.
    clear_panel_tables()
    started = time.perf_counter()
    batched = {
        config.key(): simulate_schedule_batch(spec, config, sizes)
        for config in configs
    }
    batched_s = time.perf_counter() - started

    for config in configs:
        for ref, got in zip(scalar[config.key()], batched[config.key()]):
            assert got.wall_time_s == ref.wall_time_s
            for name in PHASE_NAMES:
                assert np.array_equal(
                    got.phase_arrays[name], ref.phase_arrays[name]
                ), f"{config.label()} N={ref.n} phase {name!r}"

    # Warm pass: every (n, nb, p) panel table is memoized now.
    started = time.perf_counter()
    for config in configs:
        simulate_schedule_batch(spec, config, sizes)
    warm_s = time.perf_counter() - started

    speedup = scalar_s / batched_s if batched_s > 0 else float("inf")
    warm_speedup = scalar_s / warm_s if warm_s > 0 else float("inf")
    stats = walker_stats()

    table = render_table(
        ["walker", "seconds", "speedup"],
        [
            [f"scalar loop ({cells} cells)", f"{scalar_s:.3f}", "1.0x"],
            [
                f"batched ({len(configs)} calls x {len(sizes)} sizes)",
                f"{batched_s:.3f}",
                f"{speedup:.1f}x",
            ],
            ["batched, warm panel tables", f"{warm_s:.3f}", f"{warm_speedup:.1f}x"],
        ],
        title=(
            f"Schedule walker: {len(configs)} configs x {len(sizes)} sizes "
            f"(N={sizes[0]}..{sizes[-1]})"
        ),
    )
    write_result("schedule_walker", table + "\n\nWalker counters: " + stats.describe())

    assert speedup >= MIN_SPEEDUP, (
        f"batched walker speedup {speedup:.2f}x < {MIN_SPEEDUP:.0f}x over "
        f"{cells} cells"
    )

    benchmark.pedantic(
        lambda: simulate_schedule_batch(spec, configs[0], sizes),
        rounds=3,
        iterations=1,
    )
