"""Decision-confidence bench: the tie structure behind Tables 4/7.

Both the paper's and our verification tables show the estimated and
measured best configurations disagreeing by one process count while the
times differ by low single digits.  This bench quantifies why that is
fine: at every evaluation size, the measured optimum lies inside the
estimated tie set (candidates within the model's ~5% error band), so the
argmin is under-determined *by the physics*, not by a model deficiency.
"""

from repro.analysis.decision import decision_report, decision_table


def test_decision_confidence(benchmark, basic_pipeline, write_result):
    write_result("decision_confidence", decision_table(basic_pipeline))

    reports = decision_report(basic_pipeline, error_band=0.05)
    by_n = {report.n: report for report in reports}

    # ties are pervasive at every size (even N=3200: the Athlon-only
    # winner has a crowd of cluster configurations within 5-8%)
    assert len(by_n[3200].tie_set) >= 2
    assert len(by_n[9600].tie_set) >= 2
    # tightening the band shrinks the tie set (sanity of the definition)
    tight = decision_report(basic_pipeline, sizes=[9600], error_band=0.01)[0]
    assert len(tight.tie_set) <= len(by_n[9600].tie_set)
    # and the ground truth is always within the tie set
    for report in reports:
        actual, _ = basic_pipeline.actual_best(report.n)
        assert report.contains(actual)

    benchmark(lambda: decision_report(basic_pipeline, sizes=[9600]))
