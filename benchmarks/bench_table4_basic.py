"""Table 4: errors of the Basic model's estimated best configurations.

Paper: estimate errors -1.9%..+3.7%, regret 0%..3.6%, the Athlon-only
configuration winning at N=3200 and full-cluster multiprocess configs at
N >= 8000.  The benchmark times one 62-candidate optimization (the paper
reports ~35 ms for 62 configurations x 5 sizes on an AthlonXP 2600+).
"""

from repro.analysis.errors import evaluation_rows
from repro.analysis.report import verification_table


def test_table4_basic_errors(benchmark, basic_pipeline, write_result):
    write_result(
        "table4_basic_errors",
        f"Adjustment: {basic_pipeline.adjustment.describe()}\n\n"
        + verification_table(basic_pipeline),
    )

    rows = evaluation_rows(basic_pipeline)
    by_n = {row.n: row for row in rows}

    # paper shape: small-N optimum is the Athlon alone
    assert by_n[3200].actual_config.label(basic_pipeline.plan.kinds) == "1,1,0,0"
    # errors stay in the paper's few-percent band
    for row in rows:
        assert abs(row.estimate_error) < 0.10
        assert row.regret <= 0.05
    # large-N optima are full-cluster multiprocess configurations
    assert by_n[9600].actual_config.procs_per_pe("athlon") >= 3

    optimizer = basic_pipeline.optimizer()
    benchmark(lambda: optimizer.optimize(6400))
