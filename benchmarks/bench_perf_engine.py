"""Perf-engine bench: what the parallel/batched layers actually buy.

Two workloads, both asserting *bit-identical* results between the fast
and the reference paths (a speedup that changes answers is a bug):

* **Campaign fan-out** — the NS construction campaign serial
  (``workers=1``) vs pooled (``workers=8``, clamped to the machine).
  The >= 4x wall-time target applies where the hardware can express it
  (>= 8 usable CPUs); on smaller boxes the bench still verifies
  determinism and records what the clamp allowed.
* **Sweep search** — ranking the 62-candidate grid across a 96-size
  sweep: today's ``len(candidates) * len(sizes)`` scalar-call loop vs
  ``optimize_many``'s batched + cached evaluation (>= 10x, no hardware
  proviso — that one is vectorization, not parallelism), plus a fully
  cached re-sweep.

Results land in ``benchmarks/results/perf_engine.txt``.
"""

import time

from repro.analysis.tables import render_table
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.measure.campaign import run_campaign
from repro.measure.grids import ns_plan
from repro.perf.parallel import available_cpu_count, resolve_workers

SEED = 2004
REQUESTED_WORKERS = 8
SWEEP_SIZES = tuple(1600 + 80 * i for i in range(96))


def test_perf_engine(benchmark, spec, write_result):
    rows = []

    # -- campaign: serial vs parallel -----------------------------------------
    plan = ns_plan()
    started = time.perf_counter()
    serial = run_campaign(spec, plan, seed=SEED, workers=1)
    serial_s = time.perf_counter() - started

    workers = resolve_workers(REQUESTED_WORKERS)
    started = time.perf_counter()
    pooled = run_campaign(spec, plan, seed=SEED, workers=REQUESTED_WORKERS)
    pooled_s = time.perf_counter() - started

    assert pooled.dataset.to_json() == serial.dataset.to_json()
    assert pooled.cost_by_kind_and_n == serial.cost_by_kind_and_n
    campaign_speedup = serial_s / pooled_s if pooled_s > 0 else float("inf")
    rows.append(
        [
            f"campaign ({plan.construction_count} runs), workers={workers}",
            f"{serial_s:.3f}",
            f"{pooled_s:.3f}",
            f"{campaign_speedup:.1f}x",
        ]
    )
    if workers >= REQUESTED_WORKERS:
        assert campaign_speedup >= 4.0, (
            f"campaign speedup {campaign_speedup:.2f}x < 4x at "
            f"workers={workers}"
        )

    # -- search: looped vs batched vs cached ----------------------------------
    pipeline = EstimationPipeline(spec, PipelineConfig(protocol="ns", seed=SEED))
    _ = pipeline.store, pipeline.adjustment  # fit outside the timed region

    opt = pipeline.optimizer()
    grid = len(opt.candidates) * len(SWEEP_SIZES)
    started = time.perf_counter()
    looped = [opt.optimize(n) for n in SWEEP_SIZES]
    looped_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = pipeline.optimize_many(SWEEP_SIZES)
    batched_s = time.perf_counter() - started

    for a, b in zip(looped, batched):
        assert [e.config.key() for e in a.ranking] == [
            e.config.key() for e in b.ranking
        ]
        assert [e.estimate_s for e in a.ranking] == [
            e.estimate_s for e in b.ranking
        ]
    batched_speedup = looped_s / batched_s if batched_s > 0 else float("inf")
    rows.append(
        [
            f"sweep search ({grid} estimates)",
            f"{looped_s:.3f}",
            f"{batched_s:.3f}",
            f"{batched_speedup:.1f}x",
        ]
    )
    assert batched_speedup >= 10.0, (
        f"batched sweep speedup {batched_speedup:.2f}x < 10x"
    )

    started = time.perf_counter()
    cached = pipeline.optimize_many(SWEEP_SIZES)
    cached_s = time.perf_counter() - started
    for a, b in zip(batched, cached):
        assert [e.estimate_s for e in a.ranking] == [
            e.estimate_s for e in b.ranking
        ]
    cached_speedup = looped_s / cached_s if cached_s > 0 else float("inf")
    rows.append(
        [
            "sweep search, warm cache",
            f"{looped_s:.3f}",
            f"{cached_s:.3f}",
            f"{cached_speedup:.1f}x",
        ]
    )
    stats = pipeline.estimate_cache.stats
    assert stats.hits >= grid  # the re-sweep was answered from the cache

    table = render_table(
        ["workload", "baseline [s]", "engine [s]", "speedup"],
        rows,
        title=(
            f"Perf engine (cpus={available_cpu_count()}, "
            f"workers requested={REQUESTED_WORKERS} -> {workers})"
        ),
    )
    report = pipeline.perf.render()
    write_result("perf_engine", table + "\n\nPipeline stage report:\n" + report)

    benchmark.pedantic(
        lambda: pipeline.optimize_many(SWEEP_SIZES[:8]), rounds=1, iterations=1
    )
