"""Serving throughput: micro-batching and fleet scaling.

Part 1 — micro-batching on vs off across concurrency levels.

The serving layer coalesces concurrent requests into micro-batches and
dispatches each batch through the vectorized estimator paths (one
``estimate_totals`` call per (pipeline, config) group, one
``optimize_many`` call per pipeline).  This bench quantifies what that
buys: closed-loop requests/sec at concurrency 1, 8 and 64 against the
golden saved pipeline, with batching on (defaults) and off
(``max_batch=1``, no window).

Every request carries a distinct problem size so no round is flattened
by the estimate cache — the comparison measures evaluation and
dispatch costs, not cache hits.  At concurrency 1 batching cannot help
(every batch has size one and the window adds latency); the win must
appear as concurrency grows, and at 64 the batched optimize path is
roughly an order of magnitude faster.

Part 2 — fleet scaling: the same closed-loop workload against
``repro serve --workers N`` fleets (N = 1, 2, 4) sharing one port.
Reports aggregate requests/sec, p50/p99 latency, and scaling efficiency
(rps_N / (N * rps_1)); replies are checked bitwise against the direct
estimator path at every fleet size.  The >= 2x-at-4-workers acceptance
gate only applies where the machine actually has >= 4 CPUs — on a
1-CPU CI runner the fleet still runs (correctness is exercised), but
there is no parallel speedup to measure.
"""

import asyncio
from pathlib import Path

from repro.perf.parallel import available_cpu_count
from repro.serve import (
    EstimationServer,
    FleetConfig,
    FleetSupervisor,
    ModelRegistry,
    fire_concurrent,
    fire_timed,
)

FIXTURE = Path(__file__).parent.parent / "tests" / "golden" / "format1_pipeline"
CONCURRENCIES = (1, 8, 64)
CONFIG = (1, 2, 8, 1)
FLEET_SIZES = (1, 2, 4)


def estimate_payloads(count):
    return [
        {"op": "estimate", "pipeline": "golden", "config": list(CONFIG),
         "n": 1600 + 8 * i}
        for i in range(count)
    ]


def optimize_payloads(count):
    return [
        {"op": "optimize", "pipeline": "golden", "n": 1600 + 8 * i, "top": 3}
        for i in range(count)
    ]


def run_round(payloads, batching, concurrency):
    async def main():
        registry = ModelRegistry()
        registry.add("golden", FIXTURE)
        kwargs = {} if batching else {"max_batch": 1, "batch_window_s": 0.0}
        server = EstimationServer(registry, port=0, refresh_interval_s=None, **kwargs)
        host, port = await server.start()
        try:
            replies, elapsed = await fire_concurrent(
                host, port, payloads, concurrency=concurrency
            )
        finally:
            await server.shutdown()
        assert all(r["ok"] for r in replies)
        return len(payloads) / elapsed, server.metrics.batch_sizes.max

    return asyncio.run(main())


def sweep(make_payloads, count):
    rows = []
    for concurrency in CONCURRENCIES:
        on_rps, on_max_batch = run_round(make_payloads(count), True, concurrency)
        off_rps, _ = run_round(make_payloads(count), False, concurrency)
        rows.append((concurrency, on_rps, off_rps, on_max_batch))
    return rows


def render(title, rows):
    lines = [title, f"{'concurrency':>11s} {'batched':>10s} {'batching-off':>13s} "
                    f"{'speedup':>8s} {'max batch':>10s}"]
    for concurrency, on_rps, off_rps, max_batch in rows:
        lines.append(
            f"{concurrency:>11d} {on_rps:>8.0f} /s {off_rps:>10.0f} /s "
            f"{on_rps / off_rps:>7.2f}x {max_batch:>10d}"
        )
    return "\n".join(lines)


def test_serve_throughput(benchmark, write_result):
    estimate_rows = sweep(estimate_payloads, 192)
    optimize_rows = sweep(optimize_payloads, 96)

    write_result(
        "serve_throughput",
        render("estimate requests (distinct N, single config)", estimate_rows)
        + "\n\n"
        + render("optimize requests (distinct N)", optimize_rows),
    )

    # the acceptance bar: at concurrency 64, micro-batching beats
    # batching-off in requests/sec on both workloads
    for rows in (estimate_rows, optimize_rows):
        concurrency, on_rps, off_rps, max_batch = rows[-1]
        assert concurrency == 64
        assert max_batch > 1, "no coalescing at concurrency 64"
        assert on_rps > off_rps
    # and the optimize win is structural (one optimize_many per batch),
    # not scheduling noise
    assert optimize_rows[-1][1] > 2.0 * optimize_rows[-1][2]

    benchmark.pedantic(
        lambda: run_round(optimize_payloads(32), True, 32),
        rounds=1,
        iterations=1,
    )


# -- part 2: fleet scaling -----------------------------------------------------


def _quantile_ms(latencies, q):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index] * 1e3


def run_fleet_round(workers, payloads, concurrency, expected_by_n):
    supervisor = FleetSupervisor(
        {"golden": FIXTURE}, FleetConfig(workers=workers, stats_interval_s=0.1)
    )
    with supervisor:
        replies, latencies, elapsed = asyncio.run(
            fire_timed(supervisor.host, supervisor.port, payloads, concurrency)
        )
        status = supervisor.status()
    assert len(replies) == len(payloads)
    for reply in replies:
        assert reply["ok"], reply
        result = reply["result"]
        # bitwise identity at every fleet size: sharding the port must
        # not change a single served number
        assert result["totals"] == [expected_by_n[n] for n in result["ns"]]
    assert len(status["workers"]) == workers
    return len(payloads) / elapsed, _quantile_ms(latencies, 0.50), _quantile_ms(
        latencies, 0.99
    )


def test_fleet_scaling(benchmark, write_result):
    direct = ModelRegistry()
    direct.add("golden", FIXTURE)
    entry = direct.get("golden")
    sizes = [1600 + 8 * i for i in range(192)]
    config = entry.parse_config(CONFIG)
    expected_by_n = {
        n: float(t) for n, t in zip(sizes, entry.cached_totals(config, sizes))
    }
    payloads = [
        {"op": "estimate", "pipeline": "golden", "config": list(CONFIG), "n": n}
        for n in sizes
    ]

    rows = []
    for workers in FLEET_SIZES:
        rps, p50, p99 = run_fleet_round(workers, payloads, 16, expected_by_n)
        rows.append((workers, rps, p50, p99))

    base_rps = rows[0][1]
    lines = [
        f"fleet scaling ({len(payloads)} estimate requests, concurrency 16, "
        f"{available_cpu_count()} CPUs available)",
        f"{'workers':>7s} {'agg rps':>10s} {'p50 ms':>8s} {'p99 ms':>8s} "
        f"{'speedup':>8s} {'efficiency':>10s}",
    ]
    for workers, rps, p50, p99 in rows:
        lines.append(
            f"{workers:>7d} {rps:>7.0f} /s {p50:>8.2f} {p99:>8.2f} "
            f"{rps / base_rps:>7.2f}x {rps / (workers * base_rps):>9.0%}"
        )
    write_result("fleet_scaling", "\n".join(lines))

    # the acceptance gate needs real parallel hardware; a 1-CPU runner
    # has exercised correctness above but cannot show a speedup
    if available_cpu_count() >= 4:
        four_rps = dict((w, r) for w, r, _, _ in rows)[4]
        assert four_rps >= 2.0 * base_rps, (
            f"4-worker fleet managed only {four_rps / base_rps:.2f}x "
            f"the single-worker rate"
        )

    benchmark.pedantic(
        lambda: run_fleet_round(2, payloads[:64], 8, expected_by_n),
        rounds=1,
        iterations=1,
    )
