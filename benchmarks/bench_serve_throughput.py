"""Serving throughput: micro-batching on vs off across concurrency levels.

The serving layer coalesces concurrent requests into micro-batches and
dispatches each batch through the vectorized estimator paths (one
``estimate_totals`` call per (pipeline, config) group, one
``optimize_many`` call per pipeline).  This bench quantifies what that
buys: closed-loop requests/sec at concurrency 1, 8 and 64 against the
golden saved pipeline, with batching on (defaults) and off
(``max_batch=1``, no window).

Every request carries a distinct problem size so no round is flattened
by the estimate cache — the comparison measures evaluation and
dispatch costs, not cache hits.  At concurrency 1 batching cannot help
(every batch has size one and the window adds latency); the win must
appear as concurrency grows, and at 64 the batched optimize path is
roughly an order of magnitude faster.
"""

import asyncio
from pathlib import Path

from repro.serve import EstimationServer, ModelRegistry, fire_concurrent

FIXTURE = Path(__file__).parent.parent / "tests" / "golden" / "format1_pipeline"
CONCURRENCIES = (1, 8, 64)
CONFIG = (1, 2, 8, 1)


def estimate_payloads(count):
    return [
        {"op": "estimate", "pipeline": "golden", "config": list(CONFIG),
         "n": 1600 + 8 * i}
        for i in range(count)
    ]


def optimize_payloads(count):
    return [
        {"op": "optimize", "pipeline": "golden", "n": 1600 + 8 * i, "top": 3}
        for i in range(count)
    ]


def run_round(payloads, batching, concurrency):
    async def main():
        registry = ModelRegistry()
        registry.add("golden", FIXTURE)
        kwargs = {} if batching else {"max_batch": 1, "batch_window_s": 0.0}
        server = EstimationServer(registry, port=0, refresh_interval_s=None, **kwargs)
        host, port = await server.start()
        try:
            replies, elapsed = await fire_concurrent(
                host, port, payloads, concurrency=concurrency
            )
        finally:
            await server.shutdown()
        assert all(r["ok"] for r in replies)
        return len(payloads) / elapsed, server.metrics.batch_sizes.max

    return asyncio.run(main())


def sweep(make_payloads, count):
    rows = []
    for concurrency in CONCURRENCIES:
        on_rps, on_max_batch = run_round(make_payloads(count), True, concurrency)
        off_rps, _ = run_round(make_payloads(count), False, concurrency)
        rows.append((concurrency, on_rps, off_rps, on_max_batch))
    return rows


def render(title, rows):
    lines = [title, f"{'concurrency':>11s} {'batched':>10s} {'batching-off':>13s} "
                    f"{'speedup':>8s} {'max batch':>10s}"]
    for concurrency, on_rps, off_rps, max_batch in rows:
        lines.append(
            f"{concurrency:>11d} {on_rps:>8.0f} /s {off_rps:>10.0f} /s "
            f"{on_rps / off_rps:>7.2f}x {max_batch:>10d}"
        )
    return "\n".join(lines)


def test_serve_throughput(benchmark, write_result):
    estimate_rows = sweep(estimate_payloads, 192)
    optimize_rows = sweep(optimize_payloads, 96)

    write_result(
        "serve_throughput",
        render("estimate requests (distinct N, single config)", estimate_rows)
        + "\n\n"
        + render("optimize requests (distinct N)", optimize_rows),
    )

    # the acceptance bar: at concurrency 64, micro-batching beats
    # batching-off in requests/sec on both workloads
    for rows in (estimate_rows, optimize_rows):
        concurrency, on_rps, off_rps, max_batch = rows[-1]
        assert concurrency == 64
        assert max_batch > 1, "no coalescing at concurrency 64"
        assert on_rps > off_rps
    # and the optimize win is structural (one optimize_many per batch),
    # not scheduling noise
    assert optimize_rows[-1][1] > 2.0 * optimize_rows[-1][2]

    benchmark.pedantic(
        lambda: run_round(optimize_payloads(32), True, 32),
        rounds=1,
        iterations=1,
    )
