"""Table 6 (and Table 2/5/8 accounting): measurement cost of the reduced
NL and NS construction grids.

Paper: NL needs 12235 s (~3 h), NS only 571.7 s (~10 min) — against the
Basic model's 22869 s (~6 h).  The benchmark times an NS construction
campaign (the cheapest full campaign, the paper's speed argument).
"""

from repro.analysis.report import cost_table
from repro.hpl.driver import NoiseSpec
from repro.measure.campaign import run_campaign
from repro.measure.grids import ns_plan


def test_table6_nl_ns_cost(
    benchmark, spec, basic_pipeline, nl_pipeline, ns_pipeline, write_result
):
    text = (
        cost_table(nl_pipeline)
        + "\n\n"
        + cost_table(ns_pipeline)
        + "\n\nTotals: basic "
        + f"{basic_pipeline.campaign.total_cost_s:.0f} s, "
        + f"nl {nl_pipeline.campaign.total_cost_s:.0f} s, "
        + f"ns {ns_pipeline.campaign.total_cost_s:.0f} s "
        + "(paper: 22869 / 12235 / 572)"
    )
    write_result("table6_nl_ns_cost", text)

    basic = basic_pipeline.campaign.total_cost_s
    nl = nl_pipeline.campaign.total_cost_s
    ns = ns_pipeline.campaign.total_cost_s
    assert basic > nl > ns
    assert ns < basic / 20  # paper: 572 / 22869 = 1/40
    assert 0.3 < nl / basic < 0.75  # paper: 0.53

    plan = ns_plan()
    benchmark.pedantic(
        lambda: run_campaign(spec, plan, noise=NoiseSpec(), seed=1),
        rounds=3,
        iterations=1,
    )
