"""Extension bench: memory-guarded model construction (Section 3.4).

One paging construction run poisons a least-squares fit: the SUMMA NL
grid's single-Pentium-II run at N = 6400 needs ~1 GB (three resident
matrices) against 768 MB of RAM, runs ~4-5x slower than its compute time,
and drags the P-T offset to catastrophic values.  The guard predicts the
overflow from (N, P) alone — no timing needed — and keeps such runs out of
the fits.
"""

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.cluster.config import ClusterConfig
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.exts.apps import run_summa
from repro.measure.grids import nl_plan

KINDS = ("athlon", "pentium2")
SEED = 2004


def test_memory_guard_repairs_summa(benchmark, spec, write_result):
    plan = replace(
        nl_plan(),
        construction_sizes=(1200, 1600, 3200, 4800, 6400),
        evaluation_sizes=(3200, 4800),
    )

    def build(guard: bool):
        return EstimationPipeline(
            spec,
            PipelineConfig(
                protocol="nl",
                seed=SEED,
                runner=run_summa,
                calibration_n=4800,
                memory_guard=guard,
                guard_footprint=3.0,
            ),
            plan=plan,
        )

    unguarded = build(False)
    guarded = build(True)
    probe = ClusterConfig.from_tuple(KINDS, (1, 1, 8, 1))

    rows = []
    for label, pipeline in (("unguarded", unguarded), ("guarded", guarded)):
        pt = pipeline.store.pt_model("pentium2", 1)
        est = pipeline.estimate(probe, 4800).total
        meas = pipeline.measured_time(probe, 4800)
        excluded = len(pipeline.excluded_paging_runs)
        rows.append(
            [
                label,
                excluded,
                f"{pt.k8:+.1f}",
                f"{est:.1f}" if est != float("inf") else "out of domain",
                f"{meas:.1f}",
            ]
        )
    write_result(
        "memory_guard_summa",
        render_table(
            ["fit", "runs excluded", "P-T offset k8 [s]", "est (1,1,8,1)@4800", "measured"],
            rows,
            title="Section 3.4 memory guard on the SUMMA NL grid",
        ),
    )

    # the unguarded fit is visibly poisoned; the guarded one is sane
    assert abs(unguarded.store.pt_model("pentium2", 1).k8) > 10 * abs(
        guarded.store.pt_model("pentium2", 1).k8
    )
    est = guarded.estimate(probe, 4800).total
    meas = guarded.measured_time(probe, 4800)
    assert abs(est - meas) / meas < 0.35
    assert len(guarded.excluded_paging_runs) > 0

    benchmark.pedantic(lambda: build(True).store, rounds=1, iterations=1)
