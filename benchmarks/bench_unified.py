"""Extension bench: the unified two-variable model vs the N-T/P-T stack.

Paper future-work item (1): "make the estimation model more elegant and
unified".  The unified model fits one direct (N, P) regression per
(kind, Mi) — no two-stage integration, no reference shapes, no binning.
This bench quantifies the trade on the Basic and NS datasets:

* on well-sampled data (Basic) it matches the stacked models' decisions;
* on the NS grid it fails just as catastrophically — the failure is in
  the data's N coverage, not in the model plumbing.
"""

from repro.analysis.tables import render_table
from repro.core.optimizer import ExhaustiveOptimizer
from repro.core.unified_model import UnifiedEstimator


def _regret(pipeline, estimator, n):
    optimizer = ExhaustiveOptimizer(
        estimator, list(pipeline.plan.evaluation_configs)
    )
    best = optimizer.optimize(n).best
    chosen = pipeline.measured_time(best.config, n)
    _, t_hat = pipeline.actual_best(n)
    return (chosen - t_hat) / t_hat, best


def test_unified_vs_stacked(benchmark, basic_pipeline, ns_pipeline, write_result):
    unified_basic = UnifiedEstimator.fit_dataset(basic_pipeline.campaign.dataset)
    unified_ns = UnifiedEstimator.fit_dataset(ns_pipeline.campaign.dataset)

    rows = []
    worst = {"stacked": 0.0, "unified": 0.0}
    for n in (4800, 6400, 8000, 9600):
        stacked_regret, _ = _regret(basic_pipeline, basic_pipeline.estimator(), n)
        unified_regret, _ = _regret(basic_pipeline, unified_basic.estimator(), n)
        worst["stacked"] = max(worst["stacked"], stacked_regret)
        worst["unified"] = max(worst["unified"], unified_regret)
        rows.append([n, f"{stacked_regret:+.3f}", f"{unified_regret:+.3f}"])

    # NS data: both model families must fail (underestimate badly)
    probe_config = next(
        c for c in ns_pipeline.plan.evaluation_configs if c.label() == "1,1,8,1"
    )
    ns_unified_est = unified_ns.estimate(probe_config, 9600)
    ns_meas = ns_pipeline.measured_time(probe_config, 9600)

    write_result(
        "unified_vs_stacked",
        render_table(
            ["N", "stacked N-T/P-T regret", "unified regret"],
            rows,
            title="Unified two-variable model vs the paper's stacked models (Basic data)",
        )
        + f"\n\nNS data, (1,1,8,1) at N=9600: unified estimate "
        f"{ns_unified_est:.1f} s vs measured {ns_meas:.1f} s "
        f"({(ns_unified_est - ns_meas) / ns_meas:+.0%}) — the NS failure is "
        "in the data, not the plumbing.",
    )

    assert worst["unified"] <= max(worst["stacked"] + 0.03, 0.06)
    assert ns_unified_est < 0.5 * ns_meas  # unified extrapolation fails too

    benchmark(lambda: UnifiedEstimator.fit_dataset(basic_pipeline.campaign.dataset))
