"""Ablations of the design choices DESIGN.md calls out.

Each ablation switches one mechanism off (or swaps its policy) and
re-evaluates the Basic protocol, quantifying what the mechanism buys:

* **adjustment on/off** — the linear transformation's contribution;
* **composition policy** — auto-derived factors vs the paper's fixed
  0.27/0.85 constants;
* **max-vs-sum kind combination** is structural (the estimator takes the
  bottleneck kind); instead we ablate the **noise level** to show the
  protocol's decisions are robust to realistic measurement jitter.
"""


from repro.analysis.correlation import correlation_data
from repro.analysis.errors import evaluation_rows, worst_regret
from repro.analysis.tables import render_table
from repro.core.composition import CompositionPolicy
from repro.core.pipeline import EstimationPipeline, PipelineConfig
from repro.hpl.driver import NoiseSpec

SEED = 2004


def _rows_summary(pipeline):
    rows = evaluation_rows(pipeline)
    return {
        "worst |est err|": max(abs(r.estimate_error) for r in rows),
        "worst regret": worst_regret(rows),
    }


def test_ablation_adjustment(benchmark, spec, write_result):
    with_adj = EstimationPipeline(
        spec, PipelineConfig(protocol="basic", seed=SEED, adjust=True)
    )
    without_adj = EstimationPipeline(
        spec, PipelineConfig(protocol="basic", seed=SEED, adjust=False)
    )
    on = _rows_summary(with_adj)
    off = _rows_summary(without_adj)
    corr_on = correlation_data(with_adj, 6400).mean_abs_deviation(adjusted=True)
    corr_off = correlation_data(without_adj, 6400).mean_abs_deviation(adjusted=True)
    write_result(
        "ablation_adjustment",
        render_table(
            ["variant", "worst |est err|", "worst regret", "mean|dev|@6400"],
            [
                ["adjusted", f"{on['worst |est err|']:.3f}", f"{on['worst regret']:.3f}", f"{corr_on:.3f}"],
                ["raw", f"{off['worst |est err|']:.3f}", f"{off['worst regret']:.3f}", f"{corr_off:.3f}"],
            ],
            title="Ablation: linear adjustment (Basic protocol)",
        ),
    )
    # the adjustment tightens the correlation scatter...
    assert corr_on < corr_off
    # ...and never worsens the headline estimate error
    assert on["worst |est err|"] <= off["worst |est err|"] + 0.02

    benchmark(lambda: _rows_summary(with_adj))


def test_ablation_composition_policy(benchmark, spec, write_result):
    variants = {
        "auto (derived ratio)": CompositionPolicy(mode="auto"),
        "paper (0.27 / 0.85)": CompositionPolicy(mode="paper"),
        "fixed 0.20 / 1.00": CompositionPolicy(mode="fixed", ta_factor=0.20, tc_factor=1.0),
    }
    rows = []
    metrics = {}
    for label, policy in variants.items():
        pipeline = EstimationPipeline(
            spec,
            PipelineConfig(protocol="basic", seed=SEED, composition=policy),
        )
        summary = _rows_summary(pipeline)
        metrics[label] = summary
        rows.append(
            [label, f"{summary['worst |est err|']:.3f}", f"{summary['worst regret']:.3f}"]
        )
    write_result(
        "ablation_composition",
        render_table(
            ["composition policy", "worst |est err|", "worst regret"],
            rows,
            title="Ablation: P-T model composition factors",
        ),
    )
    # every sane policy keeps decisions good (the adjustment mops up the
    # per-policy bias), but auto should not be worse than a blind guess
    assert metrics["auto (derived ratio)"]["worst regret"] <= 0.06
    assert metrics["paper (0.27 / 0.85)"]["worst regret"] <= 0.10

    # time the composition step itself (store fit + compose)
    warm = EstimationPipeline(
        spec, PipelineConfig(protocol="basic", seed=SEED)
    )
    dataset = warm.campaign.dataset
    from repro.core.model_store import ModelStore

    def fit_and_compose():
        store = ModelStore.fit_dataset(dataset)
        CompositionPolicy(mode="auto").compose_missing(store, "athlon", "pentium2")
        return store

    benchmark(fit_and_compose)


def test_ablation_overlap_assumption(benchmark, spec, write_result):
    """Robustness of the paper's no-overlap assumption (Section 3.1).

    The models assume ``T = Ta + Tc`` with no computation/communication
    overlap.  Real HPL overlaps (look-ahead, bcast progress during
    update).  We re-run the NL protocol against a substrate configured to
    overlap aggressively (panel waits 70% hidden, deeper ring pipelining)
    and check the decisions survive.  Finding: estimate accuracy is
    unchanged (the models are fitted to measurements of the same
    overlapping system, so the assumption's inaccuracy mostly cancels),
    but overlap compresses the configuration ties, so near-tie misses
    grow somewhat — worst regret roughly 0.12 vs 0.02 without overlap.
    """
    from repro.hpl.schedule import HPLParameters

    overlapping = HPLParameters(
        pfact_wait_factor=0.3, ring_pipeline_factor=0.25
    )
    rows = []
    summaries = {}
    for label, params in (
        ("no overlap (paper assumption)", None),
        ("aggressive overlap", overlapping),
    ):
        pipeline = EstimationPipeline(
            spec, PipelineConfig(protocol="nl", seed=SEED, hpl_params=params)
        )
        summary = _rows_summary(pipeline)
        summaries[label] = summary
        rows.append(
            [label, f"{summary['worst |est err|']:.3f}", f"{summary['worst regret']:.3f}"]
        )
    write_result(
        "ablation_overlap",
        render_table(
            ["substrate behaviour", "worst |est err|", "worst regret"],
            rows,
            title="Ablation: computation/communication overlap vs the model's T = Ta + Tc",
        ),
    )
    # estimate accuracy unaffected; decisions stay usable
    assert (
        summaries["aggressive overlap"]["worst |est err|"]
        <= summaries["no overlap (paper assumption)"]["worst |est err|"] + 0.03
    )
    assert summaries["aggressive overlap"]["worst regret"] <= 0.15

    benchmark.pedantic(
        lambda: _rows_summary(
            EstimationPipeline(
                spec,
                PipelineConfig(protocol="nl", seed=SEED, hpl_params=overlapping),
            )
        ),
        rounds=1,
        iterations=1,
    )


def test_ablation_noise_level(benchmark, spec, write_result):
    """Noise sensitivity of the NL protocol.

    Finding: at the paper-realistic ~1.5% jitter, decisions are solid; at
    5%+ jitter the NL protocol degrades sharply — its N-T models are fitted
    on exactly four sizes (an interpolation, not a regression), so noise
    passes straight into the extrapolated coefficients.  This is the same
    amplification mechanism that sinks the NS protocol, and it is why the
    paper's Basic grid oversamples N ("more than necessary").
    """
    summaries = {}

    def run_all():
        for sigma in (0.0, 0.015, 0.05):
            noise = (
                NoiseSpec(sigma_compute=sigma, sigma_comm=2 * sigma) if sigma else None
            )
            pipeline = EstimationPipeline(
                spec, PipelineConfig(protocol="nl", seed=SEED, noise=noise)
            )
            summaries[sigma] = _rows_summary(pipeline)
        return summaries

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    write_result(
        "ablation_noise",
        render_table(
            ["sigma", "worst |est err|", "worst regret"],
            [
                [f"{s:.3f}", f"{v['worst |est err|']:.3f}", f"{v['worst regret']:.3f}"]
                for s, v in sorted(summaries.items())
            ],
            title="Ablation: measurement-noise sensitivity (NL protocol)",
        ),
    )
    # paper-realistic noise: decisions stay in the paper's band
    assert summaries[0.0]["worst regret"] <= 0.06
    assert summaries[0.015]["worst regret"] <= 0.06
    # heavy noise: the 4-point N-T fits amplify it into bad decisions
    assert summaries[0.05]["worst regret"] > summaries[0.015]["worst regret"]
