"""Figures 6-11: estimate-vs-measurement correlation scatter.

* Figs 6/7: Basic model at N = 6400, before/after adjustment — systematic
  deviation of the M1 >= 3 groups, pulled onto the diagonal by the linear
  transformation.
* Figs 8-11: NL model at N = 1600 and 6400, raw and adjusted.

The benchmark times the production of one full 62-point scatter (62
estimates + 62 ground-truth lookups).
"""

from repro.analysis.correlation import correlation_data
from repro.analysis.figures import ascii_scatter


def _panel(pipeline, n, adjusted, caption):
    data = correlation_data(pipeline, n)
    return (
        f"{caption}\n"
        f"R^2 = {data.r_squared(adjusted=adjusted):.4f}, "
        f"mean |dev| = {data.mean_abs_deviation(adjusted=adjusted):.3f}, "
        f"slope = {data.systematic_slope(adjusted=adjusted):.3f}\n"
        + ascii_scatter(data, adjusted=adjusted)
    )


def test_fig06_07_basic_correlation(benchmark, basic_pipeline, write_result):
    panels = [
        _panel(basic_pipeline, 6400, False, "Figure 6 — Basic, N=6400, original"),
        _panel(basic_pipeline, 6400, True, "Figure 7 — Basic, N=6400, adjusted"),
    ]
    write_result("fig06_07_basic_correlation", "\n\n".join(panels))

    raw = correlation_data(basic_pipeline, 6400)
    assert raw.r_squared(adjusted=True) > raw.r_squared(adjusted=False)

    benchmark(lambda: correlation_data(basic_pipeline, 6400))


def test_fig08_11_nl_correlation(benchmark, nl_pipeline, write_result):
    panels = [
        _panel(nl_pipeline, 1600, False, "Figure 8 — NL, N=1600, original"),
        _panel(nl_pipeline, 6400, False, "Figure 9 — NL, N=6400, original"),
        _panel(nl_pipeline, 1600, True, "Figure 10 — NL, N=1600, adjusted"),
        _panel(nl_pipeline, 6400, True, "Figure 11 — NL, N=6400, adjusted"),
    ]
    write_result("fig08_11_nl_correlation", "\n\n".join(panels))

    # paper: the adjustment tightens the large-N scatter; N=1600 (below
    # the NL construction range's useful region) stays comparatively loose
    large = correlation_data(nl_pipeline, 6400)
    small = correlation_data(nl_pipeline, 1600)
    assert large.mean_abs_deviation(adjusted=True) < large.mean_abs_deviation(
        adjusted=False
    )
    assert small.mean_abs_deviation(adjusted=False) > large.mean_abs_deviation(
        adjusted=False
    )

    benchmark(lambda: correlation_data(nl_pipeline, 1600))
